"""Tests for the reactive signature-based defender."""


from repro.attack import DirectFlood, ReflectorAttack
from repro.core import NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import ReactiveDefender
from repro.net import Network, Packet, TopologyBuilder


def build(seed=28, threshold=80.0):
    net = Network(TopologyBuilder.hierarchical(2, 2, 7, seed=seed))
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0])
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    tcsp.contract_isp("isp", net.topology.as_numbers)
    prefix = net.topology.prefix_of(victim.asn)
    authority.record_allocation(prefix, "victim-co")
    user, cert = tcsp.register_user("victim-co", [prefix])
    svc = TrafficControlService(tcsp, user, cert)
    defender = ReactiveDefender(svc, victim, threshold_pps=threshold)
    return net, victim, defender, stubs


class TestDetection:
    def test_udp_flood_triggers_firewall(self):
        net, victim, defender, stubs = build()
        agents = [net.add_host(a) for a in stubs[1:4]]
        DirectFlood(net, agents, victim, rate_pps=200.0, duration=0.4,
                    spoof="none", seed=1).launch()
        net.run(until=1.0)
        assert defender.detected("udp-flood")
        (action,) = [a for a in defender.actions if a.signature == "udp-flood"]
        assert action.devices > 0
        assert defender.reaction_time("udp-flood", attack_start=0.0) < 0.3

    def test_reflection_triggers_antispoof(self):
        net, victim, defender, stubs = build()
        agents = [net.add_host(a) for a in stubs[1:4]]
        reflectors = [net.add_host(a) for a in stubs[4:7]]
        ReflectorAttack(net, agents, reflectors, victim, rate_pps=150.0,
                        duration=0.4, mode="dns", seed=2).launch()
        net.run(until=1.0)
        assert defender.detected("reflection")
        assert not defender.detected("udp-flood")  # correctly classified

    def test_rst_storm_triggers_teardown_rules(self):
        net, victim, defender, stubs = build()
        attacker = net.add_host(stubs[1])
        for i in range(20):
            net.sim.schedule_at(0.01 * i, attacker.send,
                                Packet.tcp_rst(attacker.address, victim.address,
                                               kind="attack-misuse"))
        net.run(until=1.0)
        assert defender.detected("rst-storm")

    def test_quiet_traffic_never_triggers(self):
        net, victim, defender, stubs = build()
        client = net.add_host(stubs[2])
        for i in range(20):
            net.sim.schedule_at(0.05 * i, client.send,
                                Packet.udp(client.address, victim.address,
                                           dport=80, kind="legit"))
        net.run(until=2.0)
        assert not defender.actions

    def test_each_signature_deploys_once(self):
        net, victim, defender, stubs = build()
        agents = [net.add_host(a) for a in stubs[1:4]]
        DirectFlood(net, agents, victim, rate_pps=400.0, duration=0.6,
                    spoof="none", seed=3).launch()
        net.run(until=1.2)
        assert len([a for a in defender.actions
                    if a.signature == "udp-flood"]) == 1

    def test_service_traffic_survives_udp_response(self):
        """The off-service UDP rule must spare the victim's port 80."""
        net, victim, defender, stubs = build()
        agents = [net.add_host(a) for a in stubs[1:4]]
        DirectFlood(net, agents, victim, rate_pps=300.0, duration=0.6,
                    spoof="none", seed=4).launch()
        client = net.add_host(stubs[5])
        sent = 8
        for i in range(sent):
            net.sim.schedule_at(0.3 + 0.05 * i, client.send,
                                Packet.udp(client.address, victim.address,
                                           dport=80, kind="legit"))
        net.run(until=1.5)
        assert defender.detected("udp-flood")
        assert victim.received_by_kind.get("legit", 0) == sent


class TestE15:
    def test_arms_race_shape(self):
        from repro.experiments import e15_arms_race
        from repro.experiments.common import ExperimentConfig

        table = e15_arms_race.run(ExperimentConfig(seed=42, scale=0.6))[0]
        phase_rows = table.rows[:3]
        for row in phase_rows:
            assert row[2] < row[1]  # defended < undefended in every phase
        conn_row = table.rows[3]
        assert conn_row[2] > conn_row[1]  # more connections survive defended
