"""The Traffic Control Service Provider (paper Figs. 3-5, Sec. 5.1).

The TCSP is the single point of registration and orchestration:

* *registration* (Fig. 4): check the network user's identity, verify
  claimed address ownership against the Internet number authority, issue a
  signed ownership certificate;
* *contracts* (Fig. 3): "sets up contracts with many ISPs that
  subsequently attach adaptive devices to some or all of their routers";
* *deployment relay* (Fig. 5): map a user's service request to component
  configurations and instruct the contracted ISPs' NMSes;
* *management relay*: parameter changes, activation, log collection.

"The introduction of a TCSP helps to scale the management of our service.
Only a single service registration is needed instead of a separate one
with each ISP."  Availability is modelled explicitly (``reachable``): when
the TCSP itself is under DDoS, all calls raise
:class:`ControlPlaneUnavailable` and users fall back to the direct NMS
path — experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, TYPE_CHECKING

from repro.errors import (
    ControlPlaneUnavailable,
    DeploymentError,
    RegistrationError,
)
from repro.core.certificates import CertificateAuthority, OwnershipCertificate
from repro.core.deployment import DeploymentScope
from repro.core.nms import GraphFactory, IspNms
from repro.core.ownership import NetworkUser, NumberAuthority
from repro.net.addressing import Prefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["IspContract", "Tcsp"]


@dataclass
class IspContract:
    """A TCSP <-> ISP agreement (Fig. 3): which NMS manages which ASes."""

    isp_id: str
    nms: IspNms
    signed_at: float = 0.0


class Tcsp:
    """The traffic control service provider."""

    def __init__(self, name: str, authority: NumberAuthority,
                 network: "Network") -> None:
        self.name = name
        self.authority = authority
        self.network = network
        self.ca = CertificateAuthority(issuer=name)
        self.contracts: dict[str, IspContract] = {}
        self.registered: dict[str, tuple[NetworkUser, OwnershipCertificate]] = {}
        #: False while the TCSP itself is being DDoSed (Sec. 5.1)
        self.reachable = True
        self.registrations_refused = 0

    def _require_reachable(self) -> None:
        if not self.reachable:
            raise ControlPlaneUnavailable(
                f"TCSP {self.name!r} unreachable (e.g. under DDoS); use the "
                f"direct ISP NMS path"
            )

    # ---------------------------------------------------------------- contracts
    def contract_isp(self, isp_id: str, asns: Iterable[int],
                     attach_all: bool = True) -> IspNms:
        """Sign up an ISP: create its NMS and attach adaptive devices."""
        self._require_reachable()
        if isp_id in self.contracts:
            raise DeploymentError(f"ISP {isp_id!r} already contracted")
        nms = IspNms(isp_id, self.network, asns, ca=self.ca)
        if attach_all:
            nms.attach_devices()
        # peer all contracted NMSes with each other (config forwarding path)
        for contract in self.contracts.values():
            contract.nms.peers.append(nms)
            nms.peers.append(contract.nms)
        self.contracts[isp_id] = IspContract(isp_id=isp_id, nms=nms,
                                             signed_at=self.network.sim.now)
        return nms

    @property
    def nmses(self) -> list[IspNms]:
        return [c.nms for c in self.contracts.values()]

    def covered_asns(self) -> set[int]:
        """ASes with an attached adaptive device under any contract."""
        out: set[int] = set()
        for nms in self.nmses:
            out |= set(nms.devices)
        return out

    # -------------------------------------------------------------- registration
    def register_user(self, user_id: str, prefixes: Iterable[Prefix],
                      identity_verified: bool = True,
                      validity: float = 365.0 * 86400.0
                      ) -> tuple[NetworkUser, OwnershipCertificate]:
        """The Fig. 4 workflow: verify identity, verify ownership, certify."""
        self._require_reachable()
        prefixes = list(prefixes)
        if not prefixes:
            raise RegistrationError("registration needs at least one prefix")
        if not identity_verified:
            self.registrations_refused += 1
            raise RegistrationError(
                f"identity of {user_id!r} could not be verified (CA step)"
            )
        if not self.authority.verify_ownership(user_id, prefixes):
            self.registrations_refused += 1
            raise RegistrationError(
                f"number authority does not list {user_id!r} as holder of "
                f"all of {[str(p) for p in prefixes]}"
            )
        user = NetworkUser(user_id=user_id, prefixes=prefixes)
        cert = self.ca.issue(user_id, prefixes, now=self.network.sim.now,
                             validity=validity)
        self.registered[user_id] = (user, cert)
        return user, cert

    def user(self, user_id: str) -> NetworkUser:
        try:
            return self.registered[user_id][0]
        except KeyError as exc:
            raise RegistrationError(f"user {user_id!r} not registered") from exc

    # --------------------------------------------------------------- deployment
    def deploy_service(self, cert: OwnershipCertificate,
                       scope: DeploymentScope,
                       src_graph_factory: Optional[GraphFactory] = None,
                       dst_graph_factory: Optional[GraphFactory] = None
                       ) -> dict[str, list[int]]:
        """Fig. 5: map the request to components and instruct the ISP NMSes.

        Returns {isp_id: [configured ASes]}.
        """
        self._require_reachable()
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id not in self.registered:
            raise RegistrationError(f"user {cert.user_id!r} not registered")
        user = self.registered[cert.user_id][0]
        target = scope.resolve(self.network.topology)
        results: dict[str, list[int]] = {}
        for isp_id, contract in sorted(self.contracts.items()):
            configured = contract.nms.deploy(
                cert, user, target, src_graph_factory, dst_graph_factory,
            )
            if configured:
                results[isp_id] = configured
        return results

    # --------------------------------------------------------------- management
    def set_active(self, cert: OwnershipCertificate, active: bool) -> int:
        """Relay an activate/deactivate request to all contracted NMSes."""
        self._require_reachable()
        return sum(
            contract.nms.set_active(cert, cert.user_id, active)
            for contract in self.contracts.values()
        )

    def read_logs(self, cert: OwnershipCertificate) -> list[tuple]:
        """Relay a log-read request to all contracted NMSes."""
        self._require_reachable()
        entries: list[tuple] = []
        for contract in self.contracts.values():
            entries.extend(contract.nms.read_logs(cert, cert.user_id))
        return sorted(entries)

    def total_rule_count(self) -> int:
        """Installed components across the whole infrastructure (Sec. 5.3)."""
        return sum(nms.rule_count() for nms in self.nmses)
