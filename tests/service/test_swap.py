"""Atomic policy hot-swap on the live facade."""

import pytest

from repro.core.components import HeaderFilter, HeaderMatch, PrefixBlacklist
from repro.core.graph import ComponentGraph
from repro.core.ownership import NetworkUser
from repro.errors import ComponentGraphError, DeploymentError
from repro.net import Prefix, Protocol
from repro.service.facade import ServiceFacade, TrafficController


def make_facade() -> ServiceFacade:
    facade = ServiceFacade()
    user = NetworkUser("u1", "cust", [Prefix.parse("10.0.0.0/8")])
    graph = ComponentGraph("v1")
    graph.chain(HeaderFilter("drop-udp", HeaderMatch(proto=Protocol.UDP)))
    facade.subscribe(user, src_graph=graph)
    return facade


class TestSwapPolicy:
    def test_swap_changes_the_decision(self):
        facade = make_facade()
        assert not facade.check("10.1.2.3", "4.4.4.4",
                                proto=Protocol.UDP).allowed
        replacement = ComponentGraph("v2")
        replacement.chain(PrefixBlacklist("bl", [Prefix.parse("9.0.0.0/8")]))
        facade.swap_policy("u1", src_graph=replacement)
        assert facade.check("10.1.2.3", "4.4.4.4",
                            proto=Protocol.UDP).allowed

    def test_swap_bumps_generation_and_metrics(self):
        facade = make_facade()
        before = facade.core.generation
        replacement = ComponentGraph("v2")
        replacement.chain(HeaderFilter("f", HeaderMatch(proto=Protocol.TCP)))
        generation = facade.swap_policy("u1", src_graph=replacement)
        assert generation == before + 1 == facade.core.generation
        assert facade._m_policy_swaps.value == 1
        assert facade._m_policy_generation.value == generation

    def test_failed_swap_is_atomic(self):
        """A rejected graph leaves the old policy fully active."""
        facade = make_facade()
        swaps_before = facade._m_policy_swaps.value
        with pytest.raises(ComponentGraphError):
            facade.swap_policy("u1", src_graph=ComponentGraph("empty"))
        assert facade._m_policy_compile_failures.value == 1
        assert facade._m_policy_swaps.value == swaps_before
        # old v1 policy still dropping UDP
        assert not facade.check("10.1.2.3", "4.4.4.4",
                                proto=Protocol.UDP).allowed

    def test_swap_resets_safety_disable(self):
        facade = make_facade()
        instance = facade.core.services["u1"]
        instance.disabled_for_violation = True
        replacement = ComponentGraph("v2")
        replacement.chain(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
        facade.swap_policy("u1", src_graph=replacement)
        assert not instance.disabled_for_violation

    def test_unknown_user_and_empty_swap_are_rejected(self):
        facade = make_facade()
        graph = ComponentGraph("g")
        graph.chain(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
        with pytest.raises(DeploymentError):
            facade.swap_policy("nobody", src_graph=graph)
        with pytest.raises(DeploymentError):
            facade.swap_policy("u1")

    def test_controller_delegates(self):
        facade = make_facade()
        controller = TrafficController(facade, "4.4.4.4",
                                       proto=Protocol.UDP, dport=53)
        assert not controller.allow("10.1.2.3", now=0.0).allowed
        replacement = ComponentGraph("v2")
        replacement.chain(HeaderFilter("f", HeaderMatch(proto=Protocol.TCP)))
        generation = controller.swap_policy("u1", src_graph=replacement)
        assert generation == facade.core.generation
        assert controller.allow("10.1.2.3", now=0.0).allowed
