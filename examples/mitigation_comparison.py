#!/usr/bin/env python3
"""Compare the paper's Sec. 3 baselines against the TCS on one attack.

Reproduces, in miniature, the argument of the paper's analysis section:
run the same DDoS reflector attack against each mitigation and print the
effectiveness matrix — who protects the victim, who damages innocents,
and who misidentifies the attack sources.

Run:  python examples/mitigation_comparison.py
"""

from repro.experiments.common import ExperimentConfig
from repro.experiments.e2_mitigation_matrix import MITIGATIONS, run_cell


def main() -> None:
    cfg = ExperimentConfig(seed=3, scale=0.6)
    print("DDoS reflector attack (Fig. 1) vs. every defense from Sec. 3:\n")
    baseline = run_cell("reflector", "none", cfg)
    base = max(1, baseline.attack_pkts)
    header = f"{'defense':<18} {'attack@victim':>13} {'goodput':>8} {'collateral':>10}  sources identified"
    print(header)
    print("-" * len(header))
    for mitigation in MITIGATIONS:
        cell = baseline if mitigation == "none" else run_cell("reflector", mitigation, cfg)
        ids = ""
        if cell.identified_true or cell.identified_false:
            ids = f"{cell.identified_true} real, {cell.identified_false} innocent(!)"
        print(f"{mitigation:<18} {cell.attack_pkts / base:>12.0%} "
              f"{cell.legit_goodput:>8.0%} {cell.collateral:>10.0%}  {ids}")
    print()
    print("Reading the matrix (paper Sec. 3 / 4.3):")
    print(" * traceback names the *reflectors* -> filtering them cuts real services;")
    print(" * pushback's source aggregates are reflectors/innocents too;")
    print(" * SOS/i3 protect the victim but cut off clients that did not join;")
    print(" * ingress filtering works only where the agents' own ISPs deploy it;")
    print(" * the TCS lets the *victim* deploy those ingress rules everywhere —")
    print("   attack dead at the source, zero collateral.")


if __name__ == "__main__":
    main()
