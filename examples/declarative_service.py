#!/usr/bin/env python3
"""Declarative service deployment: say *what*, let the TCSP compose *how*.

The paper's Fig. 5 has the TCSP "map the request to service components".
This example uses the composition layer (`repro.core.compose`, modelled on
the cited Chameleon work): the customer writes a declarative rule list and
deploys it with one call; the compiler turns it into vetted component
graphs specialised per adaptive device.

Run:  python examples/declarative_service.py
"""

from repro.core import (
    DeploymentScope,
    NumberAuthority,
    RuleSpec,
    ServiceSpec,
    Tcsp,
    TrafficControlService,
    spec_factory,
)
from repro.net import ICMPType, Network, Packet, TopologyBuilder


def main() -> None:
    network = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=17))
    stubs = network.topology.stub_ases
    server = network.add_host(stubs[0])

    # --- control plane setup
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, network)
    tcsp.contract_isp("world-isp", network.topology.as_numbers)
    prefix = network.topology.prefix_of(server.asn)
    authority.record_allocation(prefix, "shop-co")
    user, cert = tcsp.register_user("shop-co", [prefix])
    service = TrafficControlService(tcsp, user, cert)

    # --- the customer's declarative policy
    policy = ServiceSpec("shop-policy", (
        RuleSpec(action="drop", proto="tcp", tcp_flags="rst",
                 label="no-forged-resets"),
        RuleSpec(action="drop", proto="icmp", icmp_type="host-unreachable",
                 label="no-forged-unreachables"),
        RuleSpec(action="drop", proto="udp", dport=19,
                 label="no-chargen"),
        RuleSpec(action="rate-limit", rate_bps=5e6, label="ceiling"),
        RuleSpec(action="log", label="audit"),
    ))
    result = service.deploy(DeploymentScope.everywhere(),
                            dst_graph_factory=spec_factory(policy))
    print(f"policy '{policy.name}' ({len(policy.rules)} rules) compiled and "
          f"deployed to {sum(len(v) for v in result.values())} devices")

    # --- traffic against the policy
    client = network.add_host(stubs[1])
    attacker = network.add_host(stubs[2])
    client.send(Packet.udp(client.address, server.address, dport=80,
                           kind="legit"))
    attacker.send(Packet.tcp_rst(attacker.address, server.address,
                                 kind="attack-rst"))
    attacker.send(Packet.icmp(attacker.address, server.address,
                              ICMPType.HOST_UNREACHABLE, kind="attack-icmp"))
    attacker.send(Packet.udp(attacker.address, server.address, dport=19,
                             kind="attack-chargen"))
    network.run()

    print(f"server received: {dict(server.received_by_kind)}")
    logs = service.read_logs()
    print(f"audit log entries collected via the TCSP: {len(logs)}")
    assert server.received_by_kind == {"legit": 1}
    print("every attack class was dropped in-network; only the legit "
          "request arrived.")


if __name__ == "__main__":
    main()
