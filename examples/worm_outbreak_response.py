#!/usr/bin/env python3
"""Worm outbreak -> growing botnet -> automated TCS reaction.

The paper motivates the service with worm-built attack networks ("a huge
amplifying network of several ten thousand hosts in a short time",
Sec. 2.1) and proposes trigger-based automated reaction (Sec. 4.4).  This
example plays a Slammer-parameter epidemic, samples the botnet at three
stages of the outbreak, attacks a victim with each, and shows the victim's
pre-armed triggers activating rate limits automatically.

Run:  python examples/worm_outbreak_response.py
"""

from repro.attack import DirectFlood, EpidemicModel, WormOutbreak
from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import AutoReactionApp
from repro.net import Network, Protocol, TopologyBuilder


def attack_with_botnet(topology_seed: int, agent_asns: list[int],
                       defended: bool):
    network = Network(TopologyBuilder.hierarchical(2, 3, 6, seed=topology_seed))
    stubs = network.topology.stub_ases
    victim = network.add_host(stubs[0])
    agents = [network.add_host(asn) for asn in agent_asns if asn in stubs]

    app = None
    if defended:
        authority = NumberAuthority()
        tcsp = Tcsp("TCSP", authority, network)
        tcsp.contract_isp("world-isp", network.topology.as_numbers)
        prefix = network.topology.prefix_of(victim.asn)
        authority.record_allocation(prefix, "victim-co")
        user, cert = tcsp.register_user("victim-co", [prefix])
        service = TrafficControlService(tcsp, user, cert)
        app = AutoReactionApp(
            service, threshold_pps=200.0, limit_bps=2e5, window=0.2,
            predicate=lambda p: p.proto is Protocol.UDP and p.dport != 80)
        app.deploy(DeploymentScope.everywhere())

    if agents:
        DirectFlood(network, agents, victim, rate_pps=300.0, duration=0.5,
                    spoof="none", seed=3).launch()
    network.run(until=1.0)
    return victim, app, len(agents)


def main() -> None:
    # Slammer-like epidemic, scaled onto our topology's stub ASes
    model = EpidemicModel(n_vulnerable=75_000, scan_rate=4_000.0)
    topo = TopologyBuilder.hierarchical(2, 3, 6, seed=9)
    outbreak = WormOutbreak(topo, model, n_scaled=60, seed=9)

    print(f"{'outbreak time':>14} {'botnet size':>12} "
          f"{'attack pkts (bare)':>19} {'attack pkts (TCS)':>18} {'triggers':>9}")
    for label, t in (("t=60s", 60.0), ("t=150s", 150.0), ("t=300s", 300.0)):
        agent_asns = outbreak.agent_asns_at(t)
        victim_bare, _, n = attack_with_botnet(9, agent_asns, defended=False)
        victim_tcs, app, _ = attack_with_botnet(9, agent_asns, defended=True)
        print(f"{label:>14} {n:>12} "
              f"{victim_bare.received_by_kind.get('attack', 0):>19} "
              f"{victim_tcs.received_by_kind.get('attack', 0):>18} "
              f"{app.fired if app else 0:>9}")
    print()
    print("The epidemic doubles every ~10s; once the botnet rate crosses the")
    print("pre-armed trigger threshold, every device on the path activates its")
    print("rate limit without any human in the loop (paper Sec. 4.4).")


if __name__ == "__main__":
    main()
