"""The Traffic Control Service Provider (paper Figs. 3-5, Sec. 5.1).

The TCSP is the single point of registration and orchestration:

* *registration* (Fig. 4): check the network user's identity, verify
  claimed address ownership against the Internet number authority, issue a
  signed ownership certificate;
* *contracts* (Fig. 3): "sets up contracts with many ISPs that
  subsequently attach adaptive devices to some or all of their routers";
* *deployment relay* (Fig. 5): map a user's service request to component
  configurations and instruct the contracted ISPs' NMSes;
* *management relay*: parameter changes, activation, log collection.

"The introduction of a TCSP helps to scale the management of our service.
Only a single service registration is needed instead of a separate one
with each ISP."  Availability is modelled explicitly: every call into the
TCSP goes through a retry-aware :class:`~repro.core.rpc.ControlChannel`
whose endpoint is down while ``reachable`` is False (the TCSP under DDoS)
— after bounded retries the channel raises
:class:`~repro.errors.RetryExhausted` (a
:class:`ControlPlaneUnavailable`), and users fall over to the direct NMS
path automatically — experiment E7.  TCSP -> NMS relays likewise go
through each NMS's own channel: a partitioned NMS is retried, then
skipped and recorded in ``undelivered`` for later resync
(:meth:`Tcsp.resync`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, TYPE_CHECKING

from repro.errors import (
    ControlPlaneUnavailable,
    DeploymentError,
    RegistrationError,
)
from repro.core.rpc import ControlChannel
from repro.core.certificates import CertificateAuthority, OwnershipCertificate
from repro.core.deployment import DeploymentScope
from repro.core.nms import GraphFactory, IspNms
from repro.core.ownership import NetworkUser, NumberAuthority
from repro.core.storage import (
    InMemoryBackend,
    StorageBackend,
    StoreLog,
    StoreTable,
)
from repro.net.addressing import Prefix

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["IspContract", "Tcsp", "TcspReplicaSet"]

#: leader-lease defaults for :class:`TcspReplicaSet` (simulated seconds)
LEASE_DURATION = 0.5
LEASE_CHECK_INTERVAL = 0.25


@dataclass
class IspContract:
    """A TCSP <-> ISP agreement (Fig. 3): which NMS manages which ASes."""

    isp_id: str
    nms: IspNms
    signed_at: float = 0.0


class Tcsp:
    """The traffic control service provider."""

    def __init__(self, name: str, authority: NumberAuthority,
                 network: "Network", *,
                 store: Optional[StorageBackend] = None,
                 ca: Optional[CertificateAuthority] = None) -> None:
        self.name = name
        self.authority = authority
        self.network = network
        self.ca = ca if ca is not None else CertificateAuthority(issuer=name)
        #: registration / contract / relay state lives on a pluggable
        #: storage backend (DESIGN.md §9) — process-local memory by
        #: default, or a shared replica set for TCSP failover
        self.store: StorageBackend = store if store is not None \
            else InMemoryBackend()
        self.contracts: StoreTable = StoreTable(self.store, "tcsp.contracts")
        self.registered: StoreTable = StoreTable(self.store, "tcsp.registered")
        #: False while the TCSP itself is being DDoSed (Sec. 5.1)
        self.reachable = True
        self.registrations_refused = 0
        #: retry-aware channel all user -> TCSP calls go through; replaces
        #: the old hard `if not reachable: raise` check
        self.channel = ControlChannel(
            f"tcsp:{name}", clock=lambda: network.sim.now,
            down_fn=lambda: not self.reachable,
        )
        #: (isp_id, op) relays that exhausted their retries (NMS partition)
        self.undelivered: StoreLog = StoreLog(self.store, "tcsp.undelivered")
        self.nms_relay_failures = 0
        self._pending_relays: StoreLog = StoreLog(self.store,
                                                  "tcsp.pending_relays")
        #: pending relays dropped at resync because their contract vanished
        self.resync_dropped = 0

    def _call(self, op: str, fn: Callable[..., Any], *args: Any) -> Any:
        """Route one inbound control call through the TCSP's channel."""
        return self.channel.call(op, fn, *args)

    def _relay(self, contract: IspContract, op: str, fn: Callable[..., Any],
               *args: Any) -> Any:
        """Relay one call to an ISP NMS through *its* channel; a partition
        exhausts the retries, is recorded, and returns None."""
        try:
            return contract.nms.channel.call(op, fn, *args)
        except ControlPlaneUnavailable:
            self.nms_relay_failures += 1
            self.undelivered.append((contract.isp_id, op))
            self._pending_relays.append((contract.isp_id, op, fn, args))
            return None

    # ---------------------------------------------------------------- contracts
    def contract_isp(self, isp_id: str, asns: Iterable[int],
                     attach_all: bool = True) -> IspNms:
        """Sign up an ISP: create its NMS and attach adaptive devices."""
        return self._call("contract_isp", self._contract_isp, isp_id,
                          asns, attach_all)

    def _contract_isp(self, isp_id: str, asns: Iterable[int],
                      attach_all: bool) -> IspNms:
        if isp_id in self.contracts:
            raise DeploymentError(f"ISP {isp_id!r} already contracted")
        nms = IspNms(isp_id, self.network, asns, ca=self.ca,
                     store=self.store)
        if attach_all:
            nms.attach_devices()
        # peer all contracted NMSes with each other (config forwarding path)
        for contract in self.contracts.values():
            contract.nms.peers.append(nms)
            nms.peers.append(contract.nms)
        self.contracts[isp_id] = IspContract(isp_id=isp_id, nms=nms,
                                             signed_at=self.network.sim.now)
        return nms

    @property
    def nmses(self) -> list[IspNms]:
        return [c.nms for c in self.contracts.values()]

    def covered_asns(self) -> set[int]:
        """ASes with an attached adaptive device under any contract."""
        out: set[int] = set()
        for nms in self.nmses:
            out |= set(nms.devices)
        return out

    # -------------------------------------------------------------- registration
    def register_user(self, user_id: str, prefixes: Iterable[Prefix],
                      identity_verified: bool = True,
                      validity: float = 365.0 * 86400.0
                      ) -> tuple[NetworkUser, OwnershipCertificate]:
        """The Fig. 4 workflow: verify identity, verify ownership, certify."""
        return self._call("register_user", self._register_user, user_id,
                          prefixes, identity_verified, validity)

    def _register_user(self, user_id: str, prefixes: Iterable[Prefix],
                       identity_verified: bool, validity: float
                       ) -> tuple[NetworkUser, OwnershipCertificate]:
        prefixes = list(prefixes)
        if not prefixes:
            raise RegistrationError("registration needs at least one prefix")
        if not identity_verified:
            self.registrations_refused += 1
            raise RegistrationError(
                f"identity of {user_id!r} could not be verified (CA step)"
            )
        if not self.authority.verify_ownership(user_id, prefixes):
            self.registrations_refused += 1
            raise RegistrationError(
                f"number authority does not list {user_id!r} as holder of "
                f"all of {[str(p) for p in prefixes]}"
            )
        user = NetworkUser(user_id=user_id, prefixes=prefixes)
        cert = self.ca.issue(user_id, prefixes, now=self.network.sim.now,
                             validity=validity)
        self.registered[user_id] = (user, cert)
        return user, cert

    def user(self, user_id: str) -> NetworkUser:
        try:
            return self.registered[user_id][0]
        except KeyError as exc:
            raise RegistrationError(f"user {user_id!r} not registered") from exc

    # --------------------------------------------------------------- deployment
    def deploy_service(self, cert: OwnershipCertificate,
                       scope: DeploymentScope,
                       src_graph_factory: Optional[GraphFactory] = None,
                       dst_graph_factory: Optional[GraphFactory] = None
                       ) -> dict[str, list[int]]:
        """Fig. 5: map the request to components and instruct the ISP NMSes.

        Returns {isp_id: [configured ASes]}.  A partitioned NMS is retried,
        then skipped (recorded in ``undelivered``; :meth:`resync` replays
        once the partition heals).
        """
        return self._call("deploy_service", self._deploy_service, cert,
                          scope, src_graph_factory, dst_graph_factory)

    def _deploy_service(self, cert: OwnershipCertificate,
                        scope: DeploymentScope,
                        src_graph_factory: Optional[GraphFactory],
                        dst_graph_factory: Optional[GraphFactory]
                        ) -> dict[str, list[int]]:
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id not in self.registered:
            raise RegistrationError(f"user {cert.user_id!r} not registered")
        user = self.registered[cert.user_id][0]
        target = scope.resolve(self.network.topology)
        results: dict[str, list[int]] = {}
        for isp_id, contract in sorted(self.contracts.items()):
            configured = self._relay(
                contract, "deploy", contract.nms.deploy,
                cert, user, target, src_graph_factory, dst_graph_factory,
            )
            if configured:
                results[isp_id] = configured
        return results

    def resync(self, isp_id: Optional[str] = None) -> int:
        """Replay relays that were undelivered (e.g. during an NMS
        partition); returns how many were delivered this time.

        A successfully replayed relay clears its ``undelivered`` ledger
        entry too, so the ledger reports *outstanding* work only.  Pending
        relays whose contract has vanished cannot ever be replayed: they
        are dropped from both ledgers and counted in ``resync_dropped``
        instead of silently disappearing.
        """
        delivered = 0
        remaining: list[tuple] = []
        for entry in self._pending_relays:
            target_id, op, fn, args = entry
            if isp_id is not None and target_id != isp_id:
                remaining.append(entry)
                continue
            contract = self.contracts.get(target_id)
            if contract is None:
                self.resync_dropped += 1
                self.undelivered.remove((target_id, op))
                continue
            try:
                contract.nms.channel.call(op, fn, *args)
                delivered += 1
                self.undelivered.remove((target_id, op))
            except ControlPlaneUnavailable:
                remaining.append(entry)
        self._pending_relays.replace(remaining)
        return delivered

    # --------------------------------------------------------------- management
    def set_active(self, cert: OwnershipCertificate, active: bool) -> int:
        """Relay an activate/deactivate request to all contracted NMSes."""
        return self._call("set_active", self._set_active, cert, active)

    def _set_active(self, cert: OwnershipCertificate, active: bool) -> int:
        touched = 0
        for contract in self.contracts.values():
            result = self._relay(contract, "set_active",
                                 contract.nms.set_active,
                                 cert, cert.user_id, active)
            touched += result or 0
        return touched

    def read_logs(self, cert: OwnershipCertificate) -> list[tuple]:
        """Relay a log-read request to all contracted NMSes."""
        return self._call("read_logs", self._read_logs, cert)

    def _read_logs(self, cert: OwnershipCertificate) -> list[tuple]:
        entries: list[tuple] = []
        for contract in self.contracts.values():
            result = self._relay(contract, "read_logs",
                                 contract.nms.read_logs, cert, cert.user_id)
            entries.extend(result or [])
        return sorted(entries)

    def total_rule_count(self) -> int:
        """Installed components across the whole infrastructure (Sec. 5.3)."""
        return sum(nms.rule_count() for nms in self.nmses)


class TcspReplicaSet:
    """The TCSP run as a replica set: one leader plus warm standbys over a
    shared storage backend (DESIGN.md §9).

    Sec. 5.1's availability scenario is the TCSP itself being DDoSed.  A
    single :class:`Tcsp` instance survives that in *reachability* terms
    only (users fall back to the direct NMS path); the state it holds —
    registrations, contracts, the undelivered-relay ledger — does not.
    Here every replica shares one :class:`~repro.core.storage
    .StorageBackend` and one certificate authority, so a promoted standby
    sees every record the old leader wrote (modulo the backend's own
    replication lag, which anti-entropy repairs).

    Leadership is a *lease* over the simulated clock: while the leader is
    reachable each check tick renews the lease; once the leader is
    unreachable **and** the lease has expired, the first reachable standby
    is promoted (deterministic scan order).  :meth:`start` drives the
    ticks as simulator events; every facade call also runs an
    opportunistic check, so promotion latency is bounded by the lease even
    between ticks.  The facade mirrors the :class:`Tcsp` surface that
    :class:`~repro.core.service.TrafficControlService` and the experiments
    program against, so a replica set drops in wherever a single TCSP was
    used.
    """

    def __init__(self, name: str, authority: NumberAuthority,
                 network: "Network", *,
                 store: Optional[StorageBackend] = None,
                 n_standbys: int = 1,
                 lease_duration: float = LEASE_DURATION,
                 check_interval: float = LEASE_CHECK_INTERVAL) -> None:
        if n_standbys < 0:
            raise DeploymentError(f"negative standby count: {n_standbys}")
        self.name = name
        self.network = network
        self.store: StorageBackend = store if store is not None \
            else InMemoryBackend()
        ca = CertificateAuthority(issuer=name)
        self.replicas = [
            Tcsp(f"{name}#{i}", authority, network, store=self.store, ca=ca)
            for i in range(n_standbys + 1)
        ]
        self.leader_index = 0
        self.lease_duration = lease_duration
        self.check_interval = check_interval
        self.lease_expires = network.sim.now + lease_duration
        self.failovers = 0
        self._tick_event = None

    # ------------------------------------------------------------ leadership
    @property
    def leader(self) -> Tcsp:
        return self.replicas[self.leader_index]

    @property
    def primary(self) -> Tcsp:
        return self.replicas[0]

    def start(self) -> None:
        """Begin the lease renew/promote loop on the simulator."""
        if self._tick_event is not None:
            return
        sim = self.network.sim
        self.lease_expires = sim.now + self.lease_duration
        self._tick_event = sim.schedule_every(self.check_interval,
                                              self._maybe_failover)
        sim.add_reset_hook(self.stop)

    def stop(self) -> None:
        """Cancel the lease loop (simulator reset hook)."""
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _maybe_failover(self) -> None:
        now = self.network.sim.now
        if self.leader.reachable:
            self.lease_expires = now + self.lease_duration
            return
        if now < self.lease_expires:
            return  # the lease must lapse before anyone takes over
        for index, replica in enumerate(self.replicas):
            if index != self.leader_index and replica.reachable:
                self.leader_index = index
                self.failovers += 1
                self.lease_expires = now + self.lease_duration
                return

    # ------------------------------------------------- facade (Tcsp surface)
    @property
    def ca(self) -> CertificateAuthority:
        return self.leader.ca

    @property
    def channel(self) -> ControlChannel:
        return self.leader.channel

    @property
    def reachable(self) -> bool:
        return self.leader.reachable

    @reachable.setter
    def reachable(self, value: bool) -> None:
        # an outage strikes the machine currently holding the lease; a
        # restore brings every replica back (the DDoS has subsided)
        if value:
            for replica in self.replicas:
                replica.reachable = True
        else:
            self.leader.reachable = False

    @property
    def contracts(self) -> StoreTable:
        return self.leader.contracts

    @property
    def registered(self) -> StoreTable:
        return self.leader.registered

    @property
    def undelivered(self) -> StoreLog:
        return self.leader.undelivered

    @property
    def nmses(self) -> list[IspNms]:
        return self.leader.nmses

    @property
    def nms_relay_failures(self) -> int:
        return sum(r.nms_relay_failures for r in self.replicas)

    @property
    def resync_dropped(self) -> int:
        return sum(r.resync_dropped for r in self.replicas)

    def contract_isp(self, isp_id: str, asns: Iterable[int],
                     attach_all: bool = True) -> IspNms:
        self._maybe_failover()
        return self.leader.contract_isp(isp_id, asns, attach_all)

    def covered_asns(self) -> set[int]:
        return self.leader.covered_asns()

    def register_user(self, user_id: str, prefixes: Iterable[Prefix],
                      identity_verified: bool = True,
                      validity: float = 365.0 * 86400.0
                      ) -> tuple[NetworkUser, OwnershipCertificate]:
        self._maybe_failover()
        return self.leader.register_user(user_id, prefixes,
                                         identity_verified, validity)

    def user(self, user_id: str) -> NetworkUser:
        self._maybe_failover()
        return self.leader.user(user_id)

    def deploy_service(self, cert: OwnershipCertificate,
                       scope: DeploymentScope,
                       src_graph_factory: Optional[GraphFactory] = None,
                       dst_graph_factory: Optional[GraphFactory] = None
                       ) -> dict[str, list[int]]:
        self._maybe_failover()
        return self.leader.deploy_service(cert, scope, src_graph_factory,
                                          dst_graph_factory)

    def resync(self, isp_id: Optional[str] = None) -> int:
        self._maybe_failover()
        return self.leader.resync(isp_id)

    def set_active(self, cert: OwnershipCertificate, active: bool) -> int:
        self._maybe_failover()
        return self.leader.set_active(cert, active)

    def read_logs(self, cert: OwnershipCertificate) -> list[tuple]:
        self._maybe_failover()
        return self.leader.read_logs(cert)

    def total_rule_count(self) -> int:
        return self.leader.total_rule_count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TcspReplicaSet({self.name!r}, replicas="
                f"{len(self.replicas)}, leader={self.leader_index}, "
                f"failovers={self.failovers})")
