"""Uniform defense deployment: one registry, one handle, every scheme.

Each defense from the paper's Sec. 3 survey (plus the TCS itself) is a
registered deploy function ``fn(built, spec) -> DefenseHandle`` that
mutates the built world — installing filters, scheduling reaction events —
and returns a :class:`DefenseHandle` carrying everything the engine needs
afterwards: display notes, the set of identified source ASes, an optional
wrapper for cooperative legitimate clients (overlays, i3 triggers), and
finalizers that run after the simulation (e.g. pushback reads its
aggregates off the live routers).

The deploy bodies are the ones E2's mitigation matrix always used — they
moved here verbatim so every experiment and the CLI share a single
implementation.  A second registry maps the defenses that also exist in
the fluid model (ingress, route-based, TCS anti-spoofing) to their
:class:`~repro.net.fluid.FluidFilter` builders for the fluid engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.core.apps import TcsAntiSpoofMitigation
from repro.core.components import ComponentContext, Verdict
from repro.core.compose import RuleSpec, ServiceSpec, compile_spec
from repro.core.device import DeviceContext
from repro.core.ownership import NetworkUser
from repro.mitigation import (
    I3Defense,
    IngressFiltering,
    LastHopFilter,
    PPMTraceback,
    Pushback,
    PushbackConfig,
    RouteBasedFiltering,
    SecureOverlay,
    TracebackFilter,
    deployment_sample,
)
from repro.mitigation.traceback import MarkingCollector
from repro.net import Protocol
from repro.net.topology import ASRole
from repro.scenario.spec import DefenseSpec, SpecError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fluid import FluidNetwork
    from repro.scenario.build import BuiltScenario

__all__ = ["DefenseHandle", "defense", "fluid_defense", "deploy",
           "fluid_filters", "names", "fluid_names"]


@dataclass
class DefenseHandle:
    """What the engine keeps after deploying a defense."""

    name: str
    notes: str = ""
    legit_wrapper: Optional[Callable] = None
    identified: set[int] = field(default_factory=set)
    finalizers: list[Callable[[], None]] = field(default_factory=list)

    def finish(self) -> None:
        """Run post-simulation hooks (identification, status notes)."""
        for fn in self.finalizers:
            fn()


DeployFn = Callable[["BuiltScenario", DefenseSpec], DefenseHandle]
FluidFn = Callable[["BuiltScenario", DefenseSpec, "FluidNetwork"], list]

_DEFENSES: dict[str, DeployFn] = {}
_FLUID: dict[str, FluidFn] = {}


def defense(name: str) -> Callable[[DeployFn], DeployFn]:
    """Register a packet-engine deploy function under ``name``."""

    def wrap(fn: DeployFn) -> DeployFn:
        _DEFENSES[name] = fn
        return fn

    return wrap


def fluid_defense(name: str) -> Callable[[FluidFn], FluidFn]:
    """Register a fluid-filter builder for the same defense ``name``."""

    def wrap(fn: FluidFn) -> FluidFn:
        _FLUID[name] = fn
        return fn

    return wrap


def names() -> tuple[str, ...]:
    return tuple(sorted(_DEFENSES))


def fluid_names() -> tuple[str, ...]:
    return tuple(sorted(_FLUID))


def deploy(built: "BuiltScenario", spec: DefenseSpec) -> DefenseHandle:
    """Deploy ``spec`` into the built world and return its handle."""
    try:
        fn = _DEFENSES[spec.name]
    except KeyError:
        raise SpecError(
            f"unknown defense {spec.name!r}; known: {names()}") from None
    return fn(built, spec)


def fluid_filters(built: "BuiltScenario", spec: DefenseSpec,
                  fluid: "FluidNetwork") -> list:
    """Fluid-model filters for ``spec`` (raises for packet-only schemes)."""
    try:
        fn = _FLUID[spec.name]
    except KeyError:
        raise SpecError(
            f"defense {spec.name!r} has no fluid-model equivalent; "
            f"fluid-capable: {fluid_names()}") from None
    return fn(built, spec, fluid)


# --------------------------------------------------------------------------
# packet-engine deployments (moved verbatim from E2's mitigation matrix)
# --------------------------------------------------------------------------

@defense("none")
def _deploy_none(built: "BuiltScenario", spec: DefenseSpec) -> DefenseHandle:
    return DefenseHandle(name="none")


@defense("ingress")
def _deploy_ingress(built: "BuiltScenario",
                    spec: DefenseSpec) -> DefenseHandle:
    net = built.network
    IngressFiltering().deploy(net, net.topology.stub_ases)
    return DefenseHandle(name="ingress")


@defense("rbf")
def _deploy_rbf(built: "BuiltScenario", spec: DefenseSpec) -> DefenseHandle:
    net = built.network
    fraction = spec.get("fraction", 0.3)
    asns = deployment_sample(net.topology, fraction, seed=built.spec.seed)
    RouteBasedFiltering().deploy(net, asns)
    return DefenseHandle(name="rbf", notes=f"{fraction:.0%} of ASes")


@defense("pushback")
def _deploy_pushback(built: "BuiltScenario",
                     spec: DefenseSpec) -> DefenseHandle:
    net = built.network
    pb = Pushback(PushbackConfig(top_aggregates=spec.get("top_aggregates", 3)))
    pb.deploy(net, net.topology.as_numbers, until=built.horizon)
    handle = DefenseHandle(name="pushback")
    handle.finalizers.append(
        lambda: handle.identified.update(pb.identified_asns()))
    return handle


@defense("traceback-filter")
def _deploy_traceback(built: "BuiltScenario",
                      spec: DefenseSpec) -> DefenseHandle:
    net, sc = built.network, built.scenario
    ppm = PPMTraceback(p=spec.get("p", 0.1), seed=built.spec.seed)
    ppm.deploy(net, net.topology.as_numbers)
    collector = MarkingCollector()
    sc.victim.add_responder(collector.on_packet)
    handle = DefenseHandle(name="traceback-filter",
                           notes="filter identified sources at victim ISP")

    def react() -> None:
        found = PPMTraceback.identified_source_asns(
            collector, min_count=spec.get("min_count", 2))
        handle.identified.update(found)
        if found:
            TracebackFilter(found).deploy(net, [sc.victim_asn])

    net.sim.schedule_at(sc.config.attack_start + 0.3, react)
    return handle


@defense("sos")
def _deploy_sos(built: "BuiltScenario", spec: DefenseSpec) -> DefenseHandle:
    net, sc = built.network, built.scenario
    stubs = [a for a in net.topology.stub_ases
             if a != sc.victim_asn and a not in built.agent_asns]
    sos = SecureOverlay(sc.victim, overlay_asns=stubs[:4], n_soaps=2,
                        n_beacons=1, n_servlets=1)
    sos.deploy(net)
    switched = sc.legit_clients[: len(sc.legit_clients) // 2]
    for client in switched:
        sos.authorize(client)
    switched_set = {id(c) for c in switched}

    def legit_wrapper(client, pkt, sos=sos, switched_set=switched_set):
        if id(client) in switched_set:
            return sos.overlay_packet(client, pkt)
        return pkt

    return DefenseHandle(name="sos", legit_wrapper=legit_wrapper,
                         notes="half the clients joined the overlay")


@defense("i3")
def _deploy_i3(built: "BuiltScenario", spec: DefenseSpec) -> DefenseHandle:
    net, sc = built.network, built.scenario
    stubs = [a for a in net.topology.stub_ases
             if a != sc.victim_asn and a not in built.agent_asns]
    i3 = I3Defense(sc.victim, i3_asns=stubs[:2])
    i3.deploy(net)
    switched = sc.legit_clients[: len(sc.legit_clients) // 2]
    switched_set = {id(c) for c in switched}

    def legit_wrapper(client, pkt, i3=i3, switched_set=switched_set):
        if id(client) in switched_set:
            return i3.trigger_packet(client, pkt)
        return pkt

    return DefenseHandle(
        name="i3", legit_wrapper=legit_wrapper,
        notes="half the clients use the trigger; victim IP already known")


@defense("lasthop")
def _deploy_lasthop(built: "BuiltScenario",
                    spec: DefenseSpec) -> DefenseHandle:
    net, sc = built.network, built.scenario
    lh = LastHopFilter(
        sc.victim,
        lambda p: p.proto is Protocol.UDP and p.dport != 80,
        processing_capacity_pps=spec.get("capacity_pps", 800.0),
    )
    lh.deploy(net)
    handle = DefenseHandle(name="lasthop")
    status = {"msg": ""}

    def attempt(lh=lh):
        ok = lh.try_configure()
        status["msg"] = ("configured" if ok
                         else "victim overloaded: config FAILED")

    net.sim.schedule_at(sc.config.attack_start + 0.2, attempt)

    def set_notes() -> None:
        handle.notes = status["msg"]

    handle.finalizers.append(set_notes)
    return handle


@defense("tcs")
def _deploy_tcs(built: "BuiltScenario", spec: DefenseSpec) -> DefenseHandle:
    """The paper's own service, specialised per attack class (Sec. 4.3)."""
    net, sc = built.network, built.scenario
    attack_kind = sc.config.attack_kind
    handle = DefenseHandle(name="tcs")

    if attack_kind == "direct-unspoofed":
        # sources are genuine: the victim reads them off its own
        # traffic and pushes blacklist rules close to the sources.
        sc.victim.record = True

        def react_tcs() -> None:
            src_asns = {
                net.topology.as_of(p.src)
                for _, p in sc.victim.log if p.kind.startswith("attack")
            }
            src_asns.discard(None)
            handle.identified.update(src_asns)
            victim_prefix = net.topology.prefix_of(sc.victim_asn)
            for asn in src_asns:
                prefix = net.topology.prefix_of(asn)

                def filt(pkt, router, link, now,
                         prefix=prefix, victim_prefix=victim_prefix):
                    # scope-confined: only the owner's (victim-bound)
                    # traffic from the offending prefix is touched
                    return not (victim_prefix.contains(pkt.dst)
                                and prefix.contains(pkt.src))

                net.routers[asn].add_filter("tcs-blacklist", filt)

        net.sim.schedule_at(sc.config.attack_start + 0.2, react_tcs)
        handle.notes = "TCS blacklist near sources (genuine addresses)"
    elif attack_kind == "direct-spoofed":
        # spoofed sources defeat source-based rules, but the victim
        # owns the *destination*: a distributed firewall rule (drop
        # off-service UDP toward the victim) runs in the dst-owner
        # stage at every stub border, killing the flood at the source.
        victim_prefix = net.topology.prefix_of(sc.victim_asn)
        for asn in net.topology.stub_ases:
            def filt(pkt, router, link, now, victim_prefix=victim_prefix):
                return not (victim_prefix.contains(pkt.dst)
                            and pkt.proto is Protocol.UDP
                            and pkt.dport != 80)

            net.routers[asn].add_filter("tcs-firewall", filt)
        handle.notes = "TCS distributed firewall (dst-owner stage) at stub borders"
    else:
        prefix = net.topology.prefix_of(sc.victim_asn)
        mit = TcsAntiSpoofMitigation([prefix], [sc.victim_asn])
        mit.deploy(net, net.topology.stub_ases)
        handle.notes = "TCS anti-spoofing at all stub borders"
    return handle


@defense("tcs-spec")
def _deploy_tcs_spec(built: "BuiltScenario",
                     spec: DefenseSpec) -> DefenseHandle:
    """TCS deployed from a *declarative* service spec via the policy compiler.

    Where ``tcs`` hand-writes its per-attack router filters, this variant
    states the policy as a :class:`ServiceSpec` (rules may come from the
    defense spec's ``rules`` parameter) and lowers it through
    :func:`compile_spec` — structural validation, Sec. 4.5 vetting, and
    program generation all run as compiler passes — then installs the
    compiled policy at every stub border as the dst-owner stage would.
    """
    net, sc = built.network, built.scenario
    victim_prefix = net.topology.prefix_of(sc.victim_asn)
    rules = spec.get("rules", None)
    if rules:
        rule_specs = tuple(RuleSpec(**r) for r in rules)
    else:
        # the distributed-firewall default: drop off-service UDP bound
        # for the victim (same semantics as the "tcs" direct-spoofed arm)
        rule_specs = (RuleSpec(action="drop", proto="udp",
                               dport_not_in=(80,),
                               dst_prefix=str(victim_prefix),
                               label="offservice-udp"),)
    service_spec = ServiceSpec(name="tcs-spec", rules=rule_specs)
    owner = NetworkUser("tcs-spec-victim", "victim", [victim_prefix])
    deployed = 0
    for asn in net.topology.stub_ases:
        device_ctx = DeviceContext(asn=asn, role=ASRole.STUB,
                                   local_prefix=net.topology.prefix_of(asn))
        compiled = compile_spec(service_spec, device_ctx).compiled()

        def filt(pkt, router, link, now,
                 compiled=compiled, device_ctx=device_ctx, owner=owner):
            ctx = ComponentContext(
                now=now, asn=device_ctx.asn, is_transit=False,
                local_prefix=device_ctx.local_prefix, stage="dest",
                owner=owner, ingress_asn=None, local_origin=True)
            return compiled.process(pkt, ctx) is Verdict.PASS

        net.routers[asn].add_filter("tcs-spec", filt)
        deployed += 1
    return DefenseHandle(
        name="tcs-spec",
        notes=f"declarative spec compiled at {deployed} stub borders")


# --------------------------------------------------------------------------
# fluid-model equivalents (the subset of defenses the flow model can express)
# --------------------------------------------------------------------------

@fluid_defense("none")
def _fluid_none(built: "BuiltScenario", spec: DefenseSpec,
                fluid: "FluidNetwork") -> list:
    return []


@fluid_defense("ingress")
def _fluid_ingress(built: "BuiltScenario", spec: DefenseSpec,
                   fluid: "FluidNetwork") -> list:
    ing = IngressFiltering()
    ing.deployed_asns = set(built.topology.stub_ases)
    return [ing.fluid_filter()]


@fluid_defense("rbf")
def _fluid_rbf(built: "BuiltScenario", spec: DefenseSpec,
               fluid: "FluidNetwork") -> list:
    fraction = spec.get("fraction", 0.3)
    rbf = RouteBasedFiltering()
    rbf.deployed_asns = set(
        deployment_sample(built.topology, fraction, seed=built.spec.seed))
    return [rbf.bind_fluid(fluid)]


@fluid_defense("tcs")
def _fluid_tcs(built: "BuiltScenario", spec: DefenseSpec,
               fluid: "FluidNetwork") -> list:
    topo = built.topology
    mit = TcsAntiSpoofMitigation([topo.prefix_of(built.victim_asn)],
                                 [built.victim_asn])
    mit.deployed_asns = set(topo.stub_ases)
    return [mit.fluid_filter()]
