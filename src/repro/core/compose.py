"""Declarative service specification and automatic composition.

Paper Fig. 5: "The TCSP maps the request to service components and
instructs network management systems of appropriate ISPs to deploy and
configure the service components."  The mapping step is modelled after the
Chameleon service-composition work the paper cites ([5] Bossardt et al.):
a *service specification* is a declarative list of rules; the compiler
turns it into a vetted component graph, specialised per device context.

This is the layer a real TCSP would expose to customers instead of raw
component graphs: users say *what* ("block RSTs", "rate-limit UDP to
2 Mbit/s", "log everything"), composition decides *how*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DeploymentError
from repro.core.components import (
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
    PayloadScrubber,
    PrefixBlacklist,
    RateLimiterComponent,
    SourceAntiSpoof,
    StatisticsCollector,
    TriggerComponent,
)
from repro.core.device import DeviceContext
from repro.core.graph import ComponentGraph
from repro.net.addressing import Prefix
from repro.net.packet import ICMPType, Protocol, TCPFlags

__all__ = ["RuleSpec", "ServiceSpec", "build_graph", "compile_spec"]

#: rule actions the composer understands
ACTIONS = ("drop", "rate-limit", "scrub-payload", "blacklist",
           "anti-spoof", "log", "collect-stats", "trigger")


@dataclass(frozen=True)
class RuleSpec:
    """One declarative rule.

    ``action`` selects the component family; the remaining fields carry
    that action's parameters.  Matching fields (proto/port/flags/...) apply
    to actions that filter.
    """

    action: str
    proto: Optional[str] = None          # "tcp" | "udp" | "icmp"
    dport: Optional[int] = None
    dport_not_in: tuple[int, ...] = ()   # "all but my service ports"
    dst_prefix: Optional[str] = None     # scope to destinations in prefix
    sport: Optional[int] = None
    tcp_flags: Optional[str] = None      # "rst" | "syn" | "synack"
    icmp_type: Optional[str] = None      # "host-unreachable" | ...
    min_size: Optional[int] = None
    max_size: Optional[int] = None
    rate_bps: Optional[float] = None     # rate-limit
    prefixes: tuple[str, ...] = ()       # blacklist / anti-spoof
    threshold_pps: Optional[float] = None  # trigger
    label: str = ""

    def validate(self) -> None:
        if self.action not in ACTIONS:
            raise DeploymentError(f"unknown rule action {self.action!r}")
        if self.action == "rate-limit" and not self.rate_bps:
            raise DeploymentError("rate-limit rule needs rate_bps")
        if self.action in ("blacklist", "anti-spoof") and not self.prefixes:
            raise DeploymentError(f"{self.action} rule needs prefixes")
        if self.action == "trigger" and not self.threshold_pps:
            raise DeploymentError("trigger rule needs threshold_pps")


@dataclass(frozen=True)
class ServiceSpec:
    """A named, ordered list of rules — the unit a user asks the TCSP for."""

    name: str
    rules: tuple[RuleSpec, ...] = ()

    def validate(self) -> None:
        if not self.rules:
            raise DeploymentError(f"service spec {self.name!r} has no rules")
        for rule in self.rules:
            rule.validate()


_PROTO = {"tcp": Protocol.TCP, "udp": Protocol.UDP, "icmp": Protocol.ICMP}
_FLAGS = {"rst": TCPFlags.RST, "syn": TCPFlags.SYN,
          "synack": TCPFlags.SYN | TCPFlags.ACK}
_ICMP = {"host-unreachable": ICMPType.HOST_UNREACHABLE,
         "time-exceeded": ICMPType.TIME_EXCEEDED,
         "echo-request": ICMPType.ECHO_REQUEST}


def _match_of(rule: RuleSpec) -> HeaderMatch:
    if rule.proto and rule.proto not in _PROTO:
        raise DeploymentError(f"unknown protocol {rule.proto!r}")
    if rule.tcp_flags and rule.tcp_flags not in _FLAGS:
        raise DeploymentError(f"unknown tcp flags {rule.tcp_flags!r}")
    if rule.icmp_type and rule.icmp_type not in _ICMP:
        raise DeploymentError(f"unknown icmp type {rule.icmp_type!r}")
    proto = _PROTO[rule.proto] if rule.proto else None
    flags = _FLAGS[rule.tcp_flags] if rule.tcp_flags else None
    icmp = _ICMP[rule.icmp_type] if rule.icmp_type else None
    dst_prefix = Prefix.parse(rule.dst_prefix) if rule.dst_prefix else None
    return HeaderMatch(proto=proto, sport=rule.sport, dport=rule.dport,
                       dport_not_in=tuple(rule.dport_not_in),
                       flags_any=flags, icmp_type=icmp, dst_prefix=dst_prefix,
                       min_size=rule.min_size, max_size=rule.max_size)


def build_graph(spec: ServiceSpec, device_ctx: DeviceContext,
                trigger_action=None) -> ComponentGraph:
    """Materialise a spec's component graph *without* compiling it.

    :func:`compile_spec` is the normal entry point; this half exists for
    tooling (``repro policy verify``) that wants the raw graph so it can
    report every compiler diagnostic instead of stopping at the first.
    """
    spec.validate()
    graph = ComponentGraph(f"{spec.name}@AS{device_ctx.asn}")
    components = []
    for i, rule in enumerate(spec.rules):
        name = rule.label or f"{rule.action}-{i}"
        if rule.action == "drop":
            components.append(HeaderFilter(name, _match_of(rule)))
        elif rule.action == "rate-limit":
            components.append(RateLimiterComponent(name, rule.rate_bps))
        elif rule.action == "scrub-payload":
            components.append(PayloadScrubber(name))
        elif rule.action == "blacklist":
            components.append(PrefixBlacklist(
                name, [Prefix.parse(p) for p in rule.prefixes]))
        elif rule.action == "anti-spoof":
            components.append(SourceAntiSpoof(
                name, [Prefix.parse(p) for p in rule.prefixes]))
        elif rule.action == "log":
            components.append(LoggerComponent(name))
        elif rule.action == "collect-stats":
            components.append(StatisticsCollector(name))
        elif rule.action == "trigger":
            components.append(TriggerComponent(
                name, rule.threshold_pps,
                action=trigger_action or (lambda ctx, rate: None)))
        else:  # pragma: no cover - validate() prevents this
            raise DeploymentError(f"unhandled action {rule.action!r}")
    graph.chain(*components)
    return graph


def compile_spec(spec: ServiceSpec, device_ctx: DeviceContext,
                 trigger_action=None) -> ComponentGraph:
    """Compile a service spec into a vetted component graph for one device.

    Rules become components in order; unknown protocols/flags and
    parameter omissions are rejected before anything reaches a device.
    ``trigger_action(ctx, rate)`` is bound to any trigger rules.
    """
    graph = build_graph(spec, device_ctx, trigger_action=trigger_action)
    # lower through the policy compiler: structural + Sec. 4.5 vetting run
    # as compiler passes (same exceptions/messages as vet_graph), and the
    # compiled programs are cached on the graph for the execution layers
    from repro.policy.compiler import compile_policy

    compile_policy(graph, vet=True)
    return graph


def spec_factory(spec: ServiceSpec, trigger_action=None):
    """A :data:`~repro.core.nms.GraphFactory` compiling ``spec`` per device."""

    def factory(device_ctx: DeviceContext) -> ComponentGraph:
        return compile_spec(spec, device_ctx, trigger_action=trigger_action)

    return factory
