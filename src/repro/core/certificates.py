"""Ownership certificates (paper Sec. 5.1).

"The binding of a network user to the set of IP addresses owned and the
subsequent verification when using the traffic control service could be
implemented with digital certificates signed by the TCSP."

The cryptographic primitive is substituted (HMAC-SHA256 with the TCSP's
secret instead of asymmetric signatures — stdlib only, see DESIGN.md); the
protocol logic — issue after verification, verify on every control-plane
request, expire, revoke — is modelled in full.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import CertificateError
from repro.net.addressing import Prefix

__all__ = ["OwnershipCertificate", "CertificateAuthority"]


@dataclass(frozen=True)
class OwnershipCertificate:
    """A signed binding (user, prefixes, validity window)."""

    user_id: str
    prefixes: tuple[Prefix, ...]
    issued_at: float
    expires_at: float
    issuer: str
    signature: bytes = field(repr=False, default=b"")

    def payload(self) -> bytes:
        """Canonical signed byte string."""
        body = {
            "user": self.user_id,
            "prefixes": sorted(str(p) for p in self.prefixes),
            "issued": round(self.issued_at, 6),
            "expires": round(self.expires_at, 6),
            "issuer": self.issuer,
        }
        return json.dumps(body, sort_keys=True).encode()

    def covers(self, prefix: Prefix) -> bool:
        """Is ``prefix`` inside the certified address space?"""
        return any(own.contains_prefix(prefix) for own in self.prefixes)


class CertificateAuthority:
    """Issues and verifies ownership certificates for one issuer identity."""

    def __init__(self, issuer: str, secret: bytes | None = None) -> None:
        self.issuer = issuer
        self._secret = secret or hashlib.sha256(issuer.encode()).digest()
        self._revoked: set[bytes] = set()

    def _sign(self, payload: bytes) -> bytes:
        return hmac.new(self._secret, payload, hashlib.sha256).digest()

    def issue(self, user_id: str, prefixes: Iterable[Prefix], now: float,
              validity: float = 365.0 * 86400.0) -> OwnershipCertificate:
        """Sign a certificate for ``user_id`` over ``prefixes``."""
        cert = OwnershipCertificate(
            user_id=user_id, prefixes=tuple(sorted(set(prefixes))),
            issued_at=now, expires_at=now + validity, issuer=self.issuer,
        )
        return OwnershipCertificate(
            user_id=cert.user_id, prefixes=cert.prefixes,
            issued_at=cert.issued_at, expires_at=cert.expires_at,
            issuer=cert.issuer, signature=self._sign(cert.payload()),
        )

    def verify(self, cert: OwnershipCertificate, now: float) -> None:
        """Raise :class:`CertificateError` unless the certificate is valid."""
        if cert.issuer != self.issuer:
            raise CertificateError(
                f"certificate issued by {cert.issuer!r}, expected {self.issuer!r}"
            )
        if not hmac.compare_digest(self._sign(cert.payload()), cert.signature):
            raise CertificateError("certificate signature invalid")
        if cert.signature in self._revoked:
            raise CertificateError("certificate revoked")
        if not (cert.issued_at <= now <= cert.expires_at):
            raise CertificateError(
                f"certificate outside validity window at t={now:.3f}"
            )

    def is_valid(self, cert: OwnershipCertificate, now: float) -> bool:
        try:
            self.verify(cert, now)
            return True
        except CertificateError:
            return False

    def revoke(self, cert: OwnershipCertificate) -> None:
        """Blacklist a certificate (e.g. after an ownership transfer)."""
        self._revoked.add(cert.signature)
