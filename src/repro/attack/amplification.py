"""Amplification metrics of the attack structure (paper Sec. 2.2).

"Such a network amplifies [1] the rate of packets (a few control packets of
the attacker to the masters cause many attack packets to be sent by the
agents to the victim), [2] the size of packets (if request packet size <
reply packet size) and [3] the difficulty to trace back an attack."

These three quantities, measured from a finished packet-level run, are the
content of experiment E1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attack.roles import AmplifyingNetwork
from repro.net.node import Host

__all__ = ["AmplificationReport", "measure_amplification"]


@dataclass(frozen=True)
class AmplificationReport:
    """The three Sec. 2.2 amplification factors plus raw counters."""

    control_packets: int          # attacker -> masters -> agents commands
    attack_packets_at_victim: int
    attack_bytes_at_victim: int
    request_bytes_sent: int       # agents' spoofed request volume
    rate_amplification: float     # attack packets / control packets
    byte_amplification: float     # victim attack bytes / agent request bytes
    traceback_depth: int          # indirection levels to the attacker

    def as_row(self) -> tuple:
        return (
            self.control_packets, self.attack_packets_at_victim,
            round(self.rate_amplification, 2), round(self.byte_amplification, 2),
            self.traceback_depth,
        )


def measure_amplification(structure: AmplifyingNetwork, victim: Host,
                          control_packets: int,
                          request_bytes_sent: int) -> AmplificationReport:
    """Compute the Sec. 2.2 amplification factors from run counters.

    ``control_packets`` is the number of command packets the attacker side
    needed (1 per master + 1 per agent in the simplest orchestration);
    ``request_bytes_sent`` is the agents' transmitted request volume.
    """
    attack_kinds = [k for k in victim.received_by_kind if k.startswith("attack")]
    pkts = sum(victim.received_by_kind[k] for k in attack_kinds)
    bts = sum(victim.received_bytes_by_kind[k] for k in attack_kinds)
    rate_amp = pkts / control_packets if control_packets else float("inf")
    byte_amp = bts / request_bytes_sent if request_bytes_sent else 0.0
    return AmplificationReport(
        control_packets=control_packets,
        attack_packets_at_victim=pkts,
        attack_bytes_at_victim=bts,
        request_bytes_sent=request_bytes_sent,
        rate_amplification=rate_amp,
        byte_amplification=byte_amp,
        traceback_depth=structure.control_depth,
    )
