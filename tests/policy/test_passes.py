"""Pass pipeline: structural/vetting parity and the optimization passes."""

import pytest

from repro.core.components import (
    Capabilities,
    Component,
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
    PrefixBlacklist,
    StatisticsCollector,
    Verdict,
)
from repro.core.graph import ComponentGraph
from repro.core.safety import MAX_EXTRA_TRAFFIC_BPS, vet_graph
from repro.errors import ComponentGraphError, VettingError
from repro.net import Prefix, Protocol
from repro.policy import Severity, lower_graph
from repro.policy.passes import (
    dead_op_pass,
    fuse_filter_runs,
    reorder_observer_runs,
    structural_pass,
    topo_order,
    vetting_pass,
)


def filters(*names: str) -> list[HeaderFilter]:
    return [HeaderFilter(n, HeaderMatch(proto=Protocol.UDP)) for n in names]


class TestStructuralPass:
    def test_clean_graph_has_no_diagnostics(self):
        graph = ComponentGraph("ok")
        graph.chain(*filters("a", "b"))
        assert structural_pass(lower_graph(graph)) == []

    def test_empty_matches_validate(self):
        graph = ComponentGraph("void")
        diags = structural_pass(lower_graph(graph))
        assert [d.code for d in diags] == ["structure.empty"]
        with pytest.raises(ComponentGraphError) as err:
            graph.validate()
        assert diags[0].message == str(err.value)

    def test_cycle_matches_validate(self):
        graph = ComponentGraph("loop")
        graph.chain(*filters("a", "b"))
        graph.connect("b", "a", Verdict.PASS)
        diags = structural_pass(lower_graph(graph))
        assert [d.code for d in diags] == ["structure.cycle"]
        with pytest.raises(ComponentGraphError) as err:
            graph.validate()
        assert diags[0].message == str(err.value)

    def test_unreachable_matches_validate(self):
        graph = ComponentGraph("island")
        graph.chain(*filters("a", "b"))
        graph.add(LoggerComponent("stranded"))
        diags = structural_pass(lower_graph(graph))
        assert [d.code for d in diags] == ["structure.unreachable"]
        assert diags[0].ops == ("stranded",)
        with pytest.raises(ComponentGraphError) as err:
            graph.validate()
        assert diags[0].message == str(err.value)


class TestVettingPass:
    def test_component_violation_matches_vet_graph(self):
        class TtlRewriter(Component):
            capabilities = Capabilities(modifies_headers=frozenset({"ttl"}))

            def process(self, packet, ctx):
                return Verdict.PASS

        graph = ComponentGraph("bad")
        graph.chain(TtlRewriter("evil"))
        diags = vetting_pass(lower_graph(graph))
        assert [d.code for d in diags] == ["vet.component"]
        with pytest.raises(VettingError) as err:
            vet_graph(graph)
        assert diags[0].message == str(err.value)

    def test_aggregate_cap_matches_vet_graph(self):
        class Chatty(Component):
            # individually under the per-component cap, so only the
            # graph-level 2x aggregate check can reject the chain
            capabilities = Capabilities(
                extra_traffic_bps=MAX_EXTRA_TRAFFIC_BPS - 1_000.0)

            def process(self, packet, ctx):
                return Verdict.PASS

        graph = ComponentGraph("chatty")
        graph.chain(Chatty("t1"), Chatty("t2"), Chatty("t3"))
        diags = vetting_pass(lower_graph(graph))
        assert [d.code for d in diags] == ["vet.aggregate"]
        with pytest.raises(VettingError) as err:
            vet_graph(graph)
        assert diags[0].message == str(err.value)

    def test_clean_graph_passes(self):
        graph = ComponentGraph("fine")
        graph.chain(*filters("a"), LoggerComponent("log"))
        assert vetting_pass(lower_graph(graph)) == []


class TestDeadOpPass:
    def test_op_behind_infeasible_drop_edge_is_dead(self):
        graph = ComponentGraph("g")
        graph.add(StatisticsCollector("stats"))
        graph.add(LoggerComponent("never"))
        # stats can never drop, so its DROP edge can never fire
        graph.connect("stats", "never", Verdict.DROP)
        policy = lower_graph(graph)
        live, diags = dead_op_pass(policy)
        assert live == {policy.op("stats").index}
        assert [d.code for d in diags] == ["opt.dead"]
        assert diags[0].ops == ("never",)
        assert diags[0].severity is Severity.INFO

    def test_feasible_drop_edge_stays_live(self):
        graph = ComponentGraph("g")
        graph.add(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
        graph.add(LoggerComponent("droplog"))
        graph.connect("f", "droplog", Verdict.DROP)
        policy = lower_graph(graph)
        live, diags = dead_op_pass(policy)
        assert live == {0, 1}
        assert diags == []


class TestFuseAndReorder:
    def test_adjacent_filters_fuse(self):
        graph = ComponentGraph("g")
        graph.chain(*filters("a", "b", "c"), LoggerComponent("log"))
        policy = lower_graph(graph)
        live, _ = dead_op_pass(policy)
        order = topo_order(policy, live)
        groups, diags = fuse_filter_runs(policy, order, live)
        assert groups[0] == [0, 1, 2]
        assert [d.code for d in diags] == ["opt.fuse"]

    def test_wired_drop_edge_blocks_fusion(self):
        graph = ComponentGraph("g")
        graph.chain(*filters("a", "b"))
        graph.add(LoggerComponent("droplog"))
        graph.connect("a", "droplog", Verdict.DROP)
        policy = lower_graph(graph)
        live, _ = dead_op_pass(policy)
        groups, diags = fuse_filter_runs(policy, topo_order(policy, live), live)
        # "a" routes drops somewhere, so it cannot merge with "b"
        assert [0] in groups and [1] in groups
        assert diags == []

    def test_observer_run_sinks_scalar_loggers(self):
        graph = ComponentGraph("g")
        graph.chain(LoggerComponent("log"), StatisticsCollector("stats"),
                    PrefixBlacklist("bl", [Prefix.parse("10.0.0.0/8")]))
        policy = lower_graph(graph)
        live, _ = dead_op_pass(policy)
        groups, _ = fuse_filter_runs(policy, topo_order(policy, live), live)
        runs, diags = reorder_observer_runs(policy, groups, live)
        (members, tail), rest = runs[0], runs[1:]
        # stats (OBSERVER_BATCH) scheduled before log, but the run still
        # exits through log's PASS edge (the original chain tail)
        assert members == [policy.op("stats").index, policy.op("log").index]
        assert tail == policy.op("stats").index
        assert [d.code for d in diags] == ["opt.reorder"]
        assert rest == [([policy.op("bl").index], policy.op("bl").index)]
