"""The parallel sweep runner must be invisible except for wall clock.

Acceptance gate for the fast-path PR: ``run_parallel`` (process-pool
fan-out over experiments) and ``parallel_map`` with ``workers > 1``
(process-pool fan-out over E3's sweep trials) must produce byte-identical
tables to the serial paths — all randomness is derived per point from the
root seed, never from shared mutable state.
"""

from repro.experiments.common import (
    ExperimentConfig,
    parallel_map,
    run_all,
    run_parallel,
)
from repro.experiments.e3_deployment_sweep import _sweep_trial, sweep_table


def render(results):
    return {exp_id: [t.to_text() for t in tables]
            for exp_id, tables in results.items()}


class TestRunParallel:
    def test_e3_byte_identical_to_serial(self):
        """The ISSUE's acceptance criterion: E3 at scale=0.25."""
        cfg = ExperimentConfig(seed=42, scale=0.25)
        serial = run_all(cfg, only=["E3"])
        parallel = run_parallel(cfg, only=["E3"], max_workers=2)
        assert render(parallel) == render(serial)

    def test_subset_and_ordering(self):
        cfg = ExperimentConfig(seed=42, scale=0.2)
        results = run_parallel(cfg, only=["E5", "E1"], max_workers=2)
        assert list(results) == ["E1", "E5"]  # sorted id order, like run_all


class TestParallelMap:
    def test_identity_with_workers(self):
        points = [(ExperimentConfig(seed=42, scale=0.2), t, 60, 20)
                  for t in range(2)]
        serial = [_sweep_trial(p) for p in points]
        fanned = parallel_map(_sweep_trial, points, workers=2)
        assert fanned == serial

    def test_sweep_table_identical_across_worker_counts(self):
        base = ExperimentConfig(seed=42, scale=0.2)
        serial = sweep_table(base)
        fanned = sweep_table(base.with_workers(2))
        assert fanned.to_text() == serial.to_text()

    def test_serial_fallback_paths(self):
        assert parallel_map(abs, [-1, -2], workers=1) == [1, 2]
        assert parallel_map(abs, [-3], workers=8) == [3]
        assert parallel_map(abs, [], workers=8) == []
