"""Packet trace recording.

Supports the forensic-analysis use cases of Sec. 4.4 ("sampling traces of
suspicious network activity") and the network-debugging application: a
:class:`TraceRecorder` can be attached to any router as a pass-through
filter and records per-packet metadata, optionally sampled.  Traces can be
exported/imported as JSON-lines for offline forensics tooling.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

import numpy as np

from repro.net.packet import Packet
from repro.util.rng import derive_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.node import Router

__all__ = ["PacketRecord", "TraceRecorder"]


@dataclass(frozen=True)
class PacketRecord:
    """One captured packet observation at one router."""

    time: float
    asn: int
    src: int
    dst: int
    proto: str
    size: int
    ttl: int
    kind: str
    uid: int
    ingress_asn: Optional[int]


class TraceRecorder:
    """Pass-through observer recording (a sample of) forwarded packets.

    Attach with ``router.add_filter(name, recorder)`` — it never drops.

    >>> # recorder(packet, router, link, now) returns True always
    """

    def __init__(self, sample_rate: float = 1.0, max_records: int = 100_000,
                 seed: int | None = None) -> None:
        if not (0.0 <= sample_rate <= 1.0):
            raise ValueError(f"sample_rate must be in [0,1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.max_records = max_records
        self.records: list[PacketRecord] = []
        self.observed = 0
        self._rng = derive_rng(seed, "trace")

    def __call__(self, packet: Packet, router: "Router", link: Optional["Link"],
                 now: float) -> bool:
        self.observed += 1
        if self.sample_rate >= 1.0 or self._rng.random() < self.sample_rate:
            if len(self.records) < self.max_records:
                ingress = None
                if link is not None:
                    src_node = link.src
                    ingress = getattr(src_node, "asn", None) if hasattr(src_node, "links") else None
                self.records.append(PacketRecord(
                    time=now, asn=router.asn, src=int(packet.src), dst=int(packet.dst),
                    proto=packet.proto.name, size=packet.size, ttl=packet.ttl,
                    kind=packet.kind, uid=packet.uid, ingress_asn=ingress,
                ))
        return True

    def by_uid(self, uid: int) -> list[PacketRecord]:
        """All observations of one packet, time-ordered."""
        return sorted((r for r in self.records if r.uid == uid), key=lambda r: r.time)

    def unique_sources(self) -> set[int]:
        """Distinct source address values seen (as claimed by the packets)."""
        return {r.src for r in self.records}

    def inter_arrival_times(self) -> np.ndarray:
        """Deltas between consecutive observations (timing characteristics)."""
        times = np.array(sorted(r.time for r in self.records))
        return np.diff(times) if len(times) > 1 else np.array([])

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------ persistence
    def to_jsonl(self, path: str | Path) -> int:
        """Write all records as JSON lines; returns the record count."""
        path = Path(path)
        with path.open("w") as fh:
            for record in self.records:
                fh.write(json.dumps(dataclasses.asdict(record)) + "\n")
        return len(self.records)

    @staticmethod
    def load_jsonl(path: str | Path) -> list[PacketRecord]:
        """Read records previously written by :meth:`to_jsonl`."""
        records = []
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(PacketRecord(**json.loads(line)))
        return records

    @staticmethod
    def merge(traces: Iterable["TraceRecorder"]) -> list[PacketRecord]:
        """Time-ordered union of several recorders (multi-vantage forensics)."""
        out: list[PacketRecord] = []
        for trace in traces:
            out.extend(trace.records)
        return sorted(out, key=lambda r: (r.time, r.asn, r.uid))
