"""Pluggable per-flow statistics backends (exact | bloom | cmsketch |
countsketch).

The statistics/trigger applications count traffic per flow key (source AS
x protocol, offending source address, ...).  Exact ``Counter`` state grows
linearly with attacker fan-in — precisely the scaling failure the paper's
Sec. 5.3 argument ("rules scale with subscribers, not hosts") forbids.  A
:class:`FlowStatsBackend` abstracts the storage so hot collectors choose
their accuracy/memory point:

* ``exact`` — two insertion-ordered dicts; byte-exact counts, O(keys)
  state.  The default everywhere, byte-identical to the historical
  ``collections.Counter`` behaviour.
* ``bloom`` — two :class:`~repro.util.sketch.CountingBloom` arrays;
  O(1) state, overestimate-only counts, **no key enumeration** (it
  cannot answer "who are the heavy hitters", only "how much did key k
  send") — the membership-family baseline in the E6 accuracy table.
* ``cmsketch`` — :class:`~repro.util.sketch.CountMinSketch` pair for
  packet/byte counts plus a lazy top-``track`` candidate set for
  heavy-hitter identities; overestimate-only, O(1) state.
* ``countsketch`` — :class:`~repro.util.sketch.CountSketch` pair plus
  the same candidate set; unbiased estimates (errors cancel in
  expectation), O(1) state.

Every backend exposes the same scalar (``add``) and vectorised
(``add_batch``) update paths as the sketches underneath, and every
backend merges with a same-configured peer — so per-device statistics
aggregate into one distributed view without shipping per-flow state.

Keys are **integers** (callers encode richer tuples; see
``repro.core.apps.statistics.encode_flow_key``).  All hashing is seeded
and deterministic: equal update streams give equal state across serial,
``parallel_map`` and process-pool execution.
"""

from __future__ import annotations

import sys
from typing import Iterator, Optional, Protocol, Union, runtime_checkable

import numpy as np

from repro.errors import ReproError
from repro.util.sketch import (
    CountingBloom,
    CountMinSketch,
    CountSketch,
    _MASK64,
    _as_i64_weights,
    _as_u64,
)

__all__ = [
    "FlowStatsBackend", "ExactFlowStats", "BloomFlowStats",
    "SketchFlowStats", "make_flow_stats", "BACKEND_KINDS",
]

#: Bytes of a small-int CPython object — the honest per-entry cost model
#: for the exact backend's dict values (keys are usually cached/shared).
_PYINT_BYTES = 28


@runtime_checkable
class FlowStatsBackend(Protocol):
    """What the hot collectors require of a per-flow statistics store."""

    kind: str

    def add(self, key: int, packets: int = 1, nbytes: int = 0) -> None:
        """Fold one packet-count/byte-count observation into ``key``."""
        ...

    def add_batch(self, keys, packets=None, nbytes=None) -> None:
        """Vectorised :meth:`add` over aligned key/weight columns."""
        ...

    def packet_count(self, key: int) -> int: ...

    def byte_count(self, key: int) -> int: ...

    def items(self) -> Iterator[tuple[int, int, int]]:
        """``(key, packets, bytes)`` for every *enumerable* key."""
        ...

    def top(self, n: int, by: str = "bytes") -> list[tuple[int, int]]: ...

    def merge(self, other: "FlowStatsBackend") -> "FlowStatsBackend": ...

    def state_bytes(self) -> int: ...


class ExactFlowStats:
    """Exact per-key packet/byte counts in insertion-ordered dicts.

    The batched path inserts previously-unseen keys in first-appearance
    order, so a batch of packets leaves byte-identical dict ordering (and
    therefore identical reports, including sort tie-breaks) to the same
    packets processed one at a time.
    """

    kind = "exact"
    __slots__ = ("packets_by_key", "bytes_by_key", "updates")

    def __init__(self) -> None:
        self.packets_by_key: dict[int, int] = {}
        self.bytes_by_key: dict[int, int] = {}
        self.updates = 0

    def add(self, key: int, packets: int = 1, nbytes: int = 0) -> None:
        key = int(key)
        pk = self.packets_by_key
        bk = self.bytes_by_key
        pk[key] = pk.get(key, 0) + packets
        bk[key] = bk.get(key, 0) + nbytes
        self.updates += 1

    def add_batch(self, keys, packets=None, nbytes=None) -> None:
        arr = _as_u64(keys)
        n = len(arr)
        if n == 0:
            return
        pw = _as_i64_weights(packets, n)
        bw = _as_i64_weights(nbytes, n) if nbytes is not None \
            else np.zeros(n, dtype=np.int64)
        uniq, first, inverse = np.unique(arr, return_index=True,
                                         return_inverse=True)
        psum = np.zeros(len(uniq), dtype=np.int64)
        bsum = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(psum, inverse, pw)
        np.add.at(bsum, inverse, bw)
        pk = self.packets_by_key
        bk = self.bytes_by_key
        # first-appearance order keeps dict insertion order identical to
        # the scalar per-packet path (report/tie-break parity)
        for j in np.argsort(first, kind="stable"):
            key = int(uniq[j])
            pk[key] = pk.get(key, 0) + int(psum[j])
            bk[key] = bk.get(key, 0) + int(bsum[j])
        self.updates += n

    def packet_count(self, key: int) -> int:
        return self.packets_by_key.get(int(key), 0)

    def byte_count(self, key: int) -> int:
        return self.bytes_by_key.get(int(key), 0)

    def items(self) -> Iterator[tuple[int, int, int]]:
        bk = self.bytes_by_key
        for key, pkts in self.packets_by_key.items():
            yield key, pkts, bk.get(key, 0)

    def top(self, n: int, by: str = "bytes") -> list[tuple[int, int]]:
        source = self.bytes_by_key if by == "bytes" else self.packets_by_key
        return sorted(source.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def merge(self, other: "ExactFlowStats") -> "ExactFlowStats":
        for key, pkts, nbytes in other.items():
            self.add(key, pkts, nbytes)
        self.updates += other.updates - len(other.packets_by_key)
        return self

    def state_bytes(self) -> int:
        """Container plus boxed-int payload — grows linearly in keys."""
        return (sys.getsizeof(self.packets_by_key)
                + sys.getsizeof(self.bytes_by_key)
                + 3 * _PYINT_BYTES * len(self.packets_by_key))

    def __len__(self) -> int:
        return len(self.packets_by_key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExactFlowStats(keys={len(self)})"


class BloomFlowStats:
    """Counting-Bloom-backed counts: O(1) state, no key enumeration."""

    kind = "bloom"
    __slots__ = ("packet_filter", "byte_filter")

    def __init__(self, n_cells: int = 4096, n_hashes: int = 4,
                 seed: int = 0) -> None:
        self.packet_filter = CountingBloom(n_cells, n_hashes, seed=seed)
        self.byte_filter = CountingBloom(n_cells, n_hashes, seed=seed + 1)

    def add(self, key: int, packets: int = 1, nbytes: int = 0) -> None:
        self.packet_filter.update(key, packets)
        self.byte_filter.update(key, nbytes)

    def add_batch(self, keys, packets=None, nbytes=None) -> None:
        arr = _as_u64(keys)
        if len(arr) == 0:
            return
        self.packet_filter.update_batch(arr, packets)
        self.byte_filter.update_batch(
            arr, nbytes if nbytes is not None
            else np.zeros(len(arr), dtype=np.int64))

    def packet_count(self, key: int) -> int:
        return self.packet_filter.estimate(key)

    def byte_count(self, key: int) -> int:
        return self.byte_filter.estimate(key)

    def items(self) -> Iterator[tuple[int, int, int]]:
        """A Bloom filter stores no keys — nothing to enumerate."""
        return iter(())

    def top(self, n: int, by: str = "bytes") -> list[tuple[int, int]]:
        return []

    def merge(self, other: "BloomFlowStats") -> "BloomFlowStats":
        self.packet_filter.merge(other.packet_filter)
        self.byte_filter.merge(other.byte_filter)
        return self

    def state_bytes(self) -> int:
        return self.packet_filter.nbytes + self.byte_filter.nbytes

    @property
    def updates(self) -> int:
        return self.packet_filter.updates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BloomFlowStats(cells={self.packet_filter.n_cells})"


class SketchFlowStats:
    """Sketch-backed counts plus a lazy top-``track`` candidate set.

    The sketch answers "how much did key k send" in O(1) state; the
    candidate set keeps the *identities* of the heaviest keys so the
    backend can also answer "who" (``items``/``top``) — the composition
    line-rate telemetry systems use (sketch for counts, top-k store for
    keys).  Candidate maintenance is deliberately lazy: updates only
    union the batch's keys into a set, and once the set outgrows
    ``4 * track`` it is compacted to the ``track`` keys with the largest
    sketch estimates in one vectorised pass — keeping the per-batch
    tracking cost off the hot path while the state stays O(track).
    """

    __slots__ = ("kind", "packet_sketch", "byte_sketch", "track", "_cand")

    def __init__(self, sketch_cls=CountMinSketch, width: int = 2048,
                 depth: int = 4, seed: int = 0, track: int = 128) -> None:
        self.kind = ("cmsketch" if sketch_cls is CountMinSketch
                     else "countsketch")
        self.packet_sketch = sketch_cls(width, depth, seed=seed)
        self.byte_sketch = sketch_cls(width, depth, seed=seed + 1)
        self.track = max(1, int(track))
        self._cand: set[int] = set()

    def _compact(self, limit: int) -> None:
        """Shrink candidates to the ``limit`` largest packet estimates.

        Ties break toward the smaller key; everything is computed from a
        key-sorted array, so the surviving set is a pure function of the
        candidate contents (deterministic across processes).
        """
        if len(self._cand) <= limit:
            return
        arr = np.fromiter(self._cand, dtype=np.uint64, count=len(self._cand))
        arr.sort()
        est = self.packet_sketch.estimate_batch(arr)
        order = np.lexsort((arr, -est))
        self._cand = {int(k) for k in arr[order[:limit]]}

    def add(self, key: int, packets: int = 1, nbytes: int = 0) -> None:
        self.packet_sketch.update(key, packets)
        self.byte_sketch.update(key, nbytes)
        self._cand.add(int(key) & _MASK64)
        if len(self._cand) > 4 * self.track:
            self._compact(self.track)

    def add_batch(self, keys, packets=None, nbytes=None) -> None:
        arr = _as_u64(keys)
        n = len(arr)
        if n == 0:
            return
        pw = _as_i64_weights(packets, n)
        self.packet_sketch.update_batch(arr, pw)
        self.byte_sketch.update_batch(
            arr, nbytes if nbytes is not None
            else np.zeros(n, dtype=np.int64))
        self._cand.update(np.unique(arr).tolist())
        if len(self._cand) > 4 * self.track:
            self._compact(self.track)

    def packet_count(self, key: int) -> int:
        return int(self.packet_sketch.estimate(key))

    def byte_count(self, key: int) -> int:
        return int(self.byte_sketch.estimate(key))

    def _ranked(self, by: str = "packets") -> list[tuple[int, int]]:
        """Candidates as ``(key, estimate)``, heaviest first (key-ascending
        ties), after compacting to the ``track`` retention budget."""
        self._compact(self.track)
        if not self._cand:
            return []
        arr = np.fromiter(self._cand, dtype=np.uint64, count=len(self._cand))
        arr.sort()
        sketch = self.byte_sketch if by == "bytes" else self.packet_sketch
        est = sketch.estimate_batch(arr)
        order = np.lexsort((arr, -est))
        return [(int(arr[j]), int(est[j])) for j in order]

    def items(self) -> Iterator[tuple[int, int, int]]:
        """Tracked heavy-hitter candidates with sketch-estimated counts."""
        for key, pkts in self._ranked("packets"):
            yield key, pkts, self.byte_count(key)

    def top(self, n: int, by: str = "bytes") -> list[tuple[int, int]]:
        return self._ranked(by)[:n]

    def merge(self, other: "SketchFlowStats") -> "SketchFlowStats":
        if self.kind != other.kind:
            raise ReproError(
                f"cannot merge {self.kind} stats with {other.kind}")
        self.packet_sketch.merge(other.packet_sketch)
        self.byte_sketch.merge(other.byte_sketch)
        self._cand |= other._cand
        self._compact(4 * self.track)
        return self

    def state_bytes(self) -> int:
        """Sketch tables plus the candidate budget (one 8-byte key and one
        8-byte cached estimate per slot, ``4 * track`` slots)."""
        return (self.packet_sketch.nbytes + self.byte_sketch.nbytes
                + 16 * 4 * self.track)

    @property
    def updates(self) -> int:
        return self.packet_sketch.updates

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SketchFlowStats(kind={self.kind!r}, "
                f"width={self.packet_sketch.width})")


BACKEND_KINDS = ("exact", "bloom", "cmsketch", "countsketch")


def make_flow_stats(kind: Union[str, FlowStatsBackend], seed: int = 0,
                    **params) -> FlowStatsBackend:
    """Build a flow-statistics backend by kind name (or pass one through).

    ``params`` forward to the backend constructor (``width``/``depth``/
    ``track`` for the sketches, ``n_cells``/``n_hashes`` for bloom).
    """
    if not isinstance(kind, str):
        return kind
    if kind == "exact":
        if params:
            raise ReproError(f"exact backend takes no parameters: {params}")
        return ExactFlowStats()
    if kind == "bloom":
        return BloomFlowStats(seed=seed, **params)
    if kind == "cmsketch":
        return SketchFlowStats(CountMinSketch, seed=seed, **params)
    if kind == "countsketch":
        return SketchFlowStats(CountSketch, seed=seed, **params)
    raise ReproError(
        f"unknown flow-stats backend {kind!r}; known: {BACKEND_KINDS}")
