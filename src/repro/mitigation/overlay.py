"""SOS / Mayday secure-overlay defense (Keromytis et al. [9], Andersen [4]).

Architecture reproduced from the papers the analysis in Sec. 3.2 refers to:

* clients enter through *secure overlay access points* (SOAPs), which only
  admit **pre-authorised** users (the trust relationships the paper calls
  "costly" to manage);
* traffic is relayed over overlay nodes (SOAP -> beacon -> secret servlet);
* the victim's perimeter (its ISP's router) drops everything except
  traffic sourced at the small set of *secret servlets*.

Reproduced criticisms (Sec. 3.2):

* every legitimate user must pre-establish trust — unauthorised clients
  are simply cut off (collateral),
* traffic takes a longer overlay path (latency stretch, measurable via
  :meth:`SecureOverlay.stretch`),
* "keeping malicious users out of an overlay will be a challenge" — an
  authorised-but-compromised client defeats the perimeter.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import MitigationError
from repro.mitigation.base import Mitigation
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Host, Router
from repro.net.packet import Packet

__all__ = ["SecureOverlay"]


class SecureOverlay(Mitigation):
    """An SOS-style overlay protecting one victim host."""

    name = "sos"

    def __init__(self, victim: Host, overlay_asns: Sequence[int],
                 n_soaps: int = 2, n_beacons: int = 1, n_servlets: int = 1) -> None:
        super().__init__()
        if len(overlay_asns) < n_soaps + n_beacons + n_servlets:
            raise MitigationError(
                f"need >= {n_soaps + n_beacons + n_servlets} overlay ASes, "
                f"got {len(overlay_asns)}"
            )
        self.victim = victim
        self.overlay_asns = list(overlay_asns)
        self.n_soaps = n_soaps
        self.n_beacons = n_beacons
        self.n_servlets = n_servlets
        self.soaps: list[Host] = []
        self.beacons: list[Host] = []
        self.servlets: list[Host] = []
        self.authorized: set[int] = set()  # client address values
        self.rejected_at_soap = 0
        self.perimeter_drops = 0
        self.network: Optional[Network] = None

    # ------------------------------------------------------------------ deploy
    def deploy(self, network: Network, asns: Iterable[int] = ()) -> None:
        """Create the overlay hosts and install the perimeter filter.

        ``asns`` is ignored — the overlay's placement is fixed by
        ``overlay_asns`` and the perimeter sits at the victim's ISP.
        """
        self.network = network
        it = iter(self.overlay_asns)
        self.soaps = [network.add_host(next(it)) for _ in range(self.n_soaps)]
        self.beacons = [network.add_host(next(it)) for _ in range(self.n_beacons)]
        self.servlets = [network.add_host(next(it)) for _ in range(self.n_servlets)]
        for i, soap in enumerate(self.soaps):
            soap.add_responder(self._soap_responder(i))
        for i, beacon in enumerate(self.beacons):
            beacon.add_responder(self._beacon_responder(i))
        for servlet in self.servlets:
            servlet.add_responder(self._servlet_responder())
        self._install_perimeter(network)
        self.deployed_asns.add(self.victim.asn)

    def _install_perimeter(self, network: Network) -> None:
        servlet_addrs = {int(s.address) for s in self.servlets}
        victim_addr = int(self.victim.address)

        def perimeter(packet: Packet, router: Router, link: Optional[Link],
                      now: float) -> bool:
            if int(packet.dst) != victim_addr:
                return True
            if int(packet.src) in servlet_addrs:
                return True
            self.perimeter_drops += 1
            return False

        network.routers[self.victim.asn].add_filter(self.name, perimeter)

    # -------------------------------------------------------------- forwarding
    def _soap_responder(self, index: int):
        def respond(packet: Packet, host: Host, now: float):
            if packet.overlay_dst is None or int(packet.overlay_dst) != int(self.victim.address):
                return None
            if int(packet.src) not in self.authorized:
                self.rejected_at_soap += 1
                return None
            beacon = self.beacons[index % len(self.beacons)]
            fwd = packet.copy(src=host.address, dst=beacon.address)
            return [fwd]

        return respond

    def _beacon_responder(self, index: int):
        def respond(packet: Packet, host: Host, now: float):
            if packet.overlay_dst is None:
                return None
            servlet = self.servlets[index % len(self.servlets)]
            return [packet.copy(src=host.address, dst=servlet.address)]

        return respond

    def _servlet_responder(self):
        def respond(packet: Packet, host: Host, now: float):
            if packet.overlay_dst is None:
                return None
            final = packet.copy(src=host.address, dst=packet.overlay_dst,
                                overlay_dst=None)
            return [final]

        return respond

    # --------------------------------------------------------------- client API
    def authorize(self, client: Host) -> None:
        """Pre-establish the trust relationship SOS requires per user."""
        self.authorized.add(int(client.address))

    def overlay_packet(self, client: Host, template: Packet) -> Packet:
        """Rewrite a victim-bound packet to enter via the client's SOAP."""
        if not self.soaps:
            raise MitigationError("overlay not deployed")
        soap = self.entry_soap(client)
        return template.copy(dst=soap.address, overlay_dst=self.victim.address)

    def entry_soap(self, client: Host) -> Host:
        """Deterministic SOAP choice (closest by AS-hop distance)."""
        assert self.network is not None
        return min(self.soaps,
                   key=lambda s: (len(self.network.path(client.asn, s.asn)), s.name))

    # ----------------------------------------------------------------- metrics
    def stretch(self, client: Host) -> float:
        """Overlay path length / direct path length in AS hops."""
        assert self.network is not None
        soap = self.entry_soap(client)
        beacon = self.beacons[self.soaps.index(soap) % len(self.beacons)]
        servlet = self.servlets[0]
        overlay_hops = (
            len(self.network.path(client.asn, soap.asn)) - 1
            + len(self.network.path(soap.asn, beacon.asn)) - 1
            + len(self.network.path(beacon.asn, servlet.asn)) - 1
            + len(self.network.path(servlet.asn, self.victim.asn)) - 1
        )
        direct = len(self.network.path(client.asn, self.victim.asn)) - 1
        return overlay_hops / direct if direct else float(overlay_hops)

    def trust_relationships(self) -> int:
        """Management cost proxy: authorised users x overlay entry points."""
        return len(self.authorized) * max(1, len(self.soaps))
