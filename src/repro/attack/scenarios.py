"""End-to-end attack scenario builder.

Wires a complete experiment onto a :class:`~repro.net.network.Network`:
victim + legitimate clients + the amplifying attack structure of Fig. 1,
for any of the paper's three attack classes —

* ``direct-spoofed``   — agents flood the victim with random spoofed sources,
* ``direct-unspoofed`` — agents flood with their real addresses,
* ``reflector``        — agents bounce spoofed requests off innocent servers.

The same scenario object can also be exported to the fluid model
(:meth:`AttackScenario.as_flows` / :meth:`fluid_reflector`), so packet-level
and flow-level experiments share one ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.errors import AttackConfigError
from repro.net.fluid import Flow, FluidNetwork
from repro.net.network import Network
from repro.net.packet import Packet
from repro.attack.flood import DirectFlood, TrafficGenerator
from repro.attack.reflector import ReflectorAttack, ReflectorFluidModel
from repro.attack.roles import AmplifyingNetwork
from repro.util.rng import derive_rng

__all__ = ["ScenarioConfig", "ScenarioMetrics", "AttackScenario"]

ATTACK_KINDS = ("direct-spoofed", "direct-unspoofed", "reflector")


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of one attack scenario."""

    attack_kind: str = "reflector"
    n_masters: int = 2
    n_agents: int = 8
    n_reflectors: int = 6
    n_legit_clients: int = 4
    attack_rate_pps: float = 200.0     # per agent
    legit_rate_pps: float = 20.0       # per client
    attack_packet_size: int = 512
    request_size: int = 40
    amplification: float = 3.0         # reflector reply/request byte ratio
    reflector_mode: str = "dns"
    duration: float = 1.0
    attack_start: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attack_kind not in ATTACK_KINDS:
            raise AttackConfigError(
                f"attack_kind must be one of {ATTACK_KINDS}, got {self.attack_kind!r}"
            )
        if self.n_agents < 1:
            raise AttackConfigError("need at least one agent")


@dataclass
class ScenarioMetrics:
    """Ground-truth outcome of a packet-level scenario run."""

    attack_packets_at_victim: int
    attack_bytes_at_victim: int
    legit_sent: int
    legit_delivered: int
    attack_requests_sent: int
    legit_dropped_by_filters: int
    attack_dropped_by_filters: int
    byte_hops_attack: float
    control_packets: int

    @property
    def legit_goodput(self) -> float:
        """Fraction of legitimate packets that reached the victim."""
        return self.legit_delivered / self.legit_sent if self.legit_sent else 1.0

    @property
    def collateral_fraction(self) -> float:
        """Fraction of legitimate packets killed *by mitigations* (not by
        congestion) — the paper's "counterproductive" measure."""
        return self.legit_dropped_by_filters / self.legit_sent if self.legit_sent else 0.0


class AttackScenario:
    """A fully-wired attack scenario on a packet-level network."""

    def __init__(self, network: Network, config: ScenarioConfig) -> None:
        self.network = network
        self.config = config
        rng = derive_rng(config.seed, "scenario")
        topo = network.topology
        stubs = topo.stub_ases
        if len(stubs) < 3:
            raise AttackConfigError("scenario needs at least 3 stub ASes")

        # --- victim
        self.victim_asn = int(stubs[int(rng.integers(0, len(stubs)))])
        self.victim = network.add_host(self.victim_asn)

        others = [a for a in stubs if a != self.victim_asn]

        def sample(n: int) -> list[int]:
            return [int(others[int(rng.integers(0, len(others)))]) for _ in range(n)]

        # --- attacker-side structure
        self.attacker = network.add_host(sample(1)[0])
        self.masters = [network.add_host(a) for a in sample(config.n_masters)]
        self.agents = [network.add_host(a) for a in sample(config.n_agents)]
        self.reflectors = (
            [network.add_host(a) for a in sample(config.n_reflectors)]
            if config.attack_kind == "reflector" else []
        )
        self.structure = AmplifyingNetwork(
            attacker=self.attacker, masters=self.masters,
            agents=self.agents, reflectors=self.reflectors, victim=self.victim,
        )
        self.structure.assign_agents()
        self.structure.validate()

        # --- legitimate clients
        self.legit_clients = [network.add_host(a) for a in sample(config.n_legit_clients)]
        self._legit_generators: list[TrafficGenerator] = []
        self._attack_generators: list[TrafficGenerator] = []
        self.control_packets = 0

    # ------------------------------------------------------------------ launch
    def launch(self, legit: bool = True) -> None:
        """Schedule control traffic, attack traffic and (optionally)
        legitimate traffic."""
        cfg = self.config
        self._send_control()
        if cfg.attack_kind == "reflector":
            attack = ReflectorAttack(
                self.network, self.agents, self.reflectors, self.victim,
                rate_pps=cfg.attack_rate_pps, request_size=cfg.request_size,
                amplification=cfg.amplification, mode=cfg.reflector_mode,
                duration=cfg.duration, start=cfg.attack_start, seed=cfg.seed,
            )
            self._attack_generators = attack.launch()
        else:
            flood = DirectFlood(
                self.network, self.agents, self.victim,
                rate_pps=cfg.attack_rate_pps, packet_size=cfg.attack_packet_size,
                duration=cfg.duration, start=cfg.attack_start,
                spoof="random" if cfg.attack_kind == "direct-spoofed" else "none",
                seed=cfg.seed,
            )
            self._attack_generators = flood.launch()
        if legit:
            self.launch_legit()

    def launch_legit(self, wrapper=None) -> None:
        """Start the legitimate clients (web requests toward the victim).

        ``wrapper(client, packet) -> packet`` lets defenses that require
        client cooperation (secure overlays, i3 triggers) rewrite the
        victim-bound packets on their way out.
        """
        cfg = self.config
        for i, client in enumerate(self.legit_clients):
            def factory(seq: int, now: float, client=client) -> Packet:
                pkt = Packet.udp(client.address, self.victim.address,
                                 dport=80, size=256, kind="legit",
                                 true_origin=client.name)
                return wrapper(client, pkt) if wrapper else pkt

            gen = TrafficGenerator(client, factory, cfg.legit_rate_pps,
                                   start=0.0, duration=cfg.attack_start + cfg.duration,
                                   seed=derive_rng(cfg.seed, "legit", i))
            gen.install()
            self._legit_generators.append(gen)

    def _send_control(self) -> None:
        """Attacker commands masters; masters command agents (Fig. 1)."""
        sim = self.network.sim
        for src, dst in self.structure.control_edges:
            pkt = Packet.udp(src.address, dst.address, size=64, kind="control",
                             true_origin=src.name)
            sim.schedule_at(max(sim.now, 0.0), src.send, pkt)
            self.control_packets += 1

    def run(self, settle: float = 0.5) -> ScenarioMetrics:
        """Launch (if needed), run to completion, and collect metrics."""
        if not self._attack_generators and not self._legit_generators:
            self.launch()
        self.network.run(until=self.config.attack_start + self.config.duration + settle)
        return self.metrics()

    # ----------------------------------------------------------------- metrics
    def metrics(self) -> ScenarioMetrics:
        v = self.victim
        attack_pkts = sum(n for k, n in v.received_by_kind.items() if k.startswith("attack"))
        attack_bytes = sum(n for k, n in v.received_bytes_by_kind.items() if k.startswith("attack"))
        legit_sent = sum(g.sent for g in self._legit_generators)
        legit_delivered = v.received_by_kind.get("legit", 0)
        requests_sent = sum(g.sent for g in self._attack_generators)
        legit_filtered = 0
        attack_filtered = 0
        for router in self.network.routers.values():
            for (reason, kind), count in router.drops_by_kind.items():
                mitigation_drop = reason.startswith("filter:") or reason == "adaptive-device"
                if not mitigation_drop:
                    continue
                if kind == "legit":
                    legit_filtered += count
                elif kind.startswith("attack"):
                    attack_filtered += count
        byte_hops_attack = sum(
            v for k, v in self.network.byte_hops_by_kind.items() if k.startswith("attack")
        )
        return ScenarioMetrics(
            attack_packets_at_victim=attack_pkts,
            attack_bytes_at_victim=attack_bytes,
            legit_sent=legit_sent,
            legit_delivered=legit_delivered,
            attack_requests_sent=requests_sent,
            legit_dropped_by_filters=legit_filtered,
            attack_dropped_by_filters=attack_filtered,
            byte_hops_attack=byte_hops_attack,
            control_packets=self.control_packets,
        )

    # ------------------------------------------------------------- fluid views
    def as_flows(self) -> list[Flow]:
        """Fluid flows for the *direct* attack classes plus legit traffic."""
        cfg = self.config
        if cfg.attack_kind == "reflector":
            raise AttackConfigError("use fluid_reflector() for reflector scenarios")
        flood = DirectFlood(
            self.network, self.agents, self.victim,
            rate_pps=cfg.attack_rate_pps, packet_size=cfg.attack_packet_size,
            spoof="random" if cfg.attack_kind == "direct-spoofed" else "none",
            seed=cfg.seed,
        )
        return [*flood.as_flows(), *self.legit_flows()]

    def legit_flows(self) -> list[Flow]:
        rate_bps = self.config.legit_rate_pps * 256 * 8
        return [Flow(c.asn, self.victim_asn, rate_bps, kind="legit", tag=c.name)
                for c in self.legit_clients]

    def fluid_reflector(self, fluid: FluidNetwork) -> ReflectorFluidModel:
        """Two-pass fluid model matching this scenario's reflector setup."""
        cfg = self.config
        if cfg.attack_kind != "reflector":
            raise AttackConfigError("scenario is not a reflector attack")
        rate_bps = cfg.attack_rate_pps * cfg.request_size * 8
        return ReflectorFluidModel(
            fluid, self.victim_asn,
            agent_asns=[a.asn for a in self.agents],
            reflector_asns=[r.asn for r in self.reflectors],
            rate_per_agent=rate_bps, amplification=cfg.amplification,
        )
