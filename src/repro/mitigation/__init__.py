"""Baseline DDoS mitigations analysed (and found wanting) in Sec. 3 of the
paper.

Reactive schemes:

* :mod:`pushback` — aggregate congestion control with upstream propagation
  (Mahajan/Bellovin/Floyd/Ioannidis/Paxson/Shenker [13, 8]),
* :mod:`traceback` — probabilistic packet marking (Savage [19]) and SPIE
  hash digests (Snoeren [21]),
* :mod:`lasthop` — victim-installed last-hop filter rules
  (Lakshminarayanan et al. [11]).

Proactive schemes:

* :mod:`ingress` — RFC 2267 ingress filtering [7] and route-based packet
  filtering (Park & Lee [15]),
* :mod:`overlay` — SOS [9] / Mayday [4] secure overlays,
* :mod:`i3defense` — indirection-based defense on i3 [11, 23].

Each implements the common :class:`~repro.mitigation.base.Mitigation`
interface so experiment E2 can sweep mitigation x attack-class uniformly.
"""

from repro.mitigation.base import (
    Mitigation,
    MitigationReport,
    deployment_sample,
)
from repro.mitigation.ingress import IngressFiltering, RouteBasedFiltering
from repro.mitigation.pushback import Pushback, PushbackConfig
from repro.mitigation.traceback import (
    PPMTraceback,
    SpieQueryResult,
    SpieTraceback,
    TracebackFilter,
)
from repro.mitigation.overlay import SecureOverlay
from repro.mitigation.i3defense import I3Defense
from repro.mitigation.lasthop import LastHopFilter

__all__ = [
    "Mitigation",
    "MitigationReport",
    "deployment_sample",
    "IngressFiltering",
    "RouteBasedFiltering",
    "Pushback",
    "PushbackConfig",
    "PPMTraceback",
    "SpieTraceback",
    "SpieQueryResult",
    "TracebackFilter",
    "SecureOverlay",
    "I3Defense",
    "LastHopFilter",
]
