"""The scenario-layer determinism contract.

Same spec + seed ⇒ byte-identical :class:`MetricSet` (equal
``signature()``) no matter how the run is executed: serially, through
:func:`repro.experiments.common.parallel_map`, or on a raw
:class:`~concurrent.futures.ProcessPoolExecutor`.  Specs travel as JSON so
the worker is a plain picklable top-level function.
"""

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.experiments.common import parallel_map
from repro.obs import scoped
from repro.scenario import ScenarioSpec, preset, run_scenario


def _sig(point):
    """Pool-worker entry point: run a JSON spec and hash the metrics."""
    spec_json, engine = point
    spec = ScenarioSpec.from_json(spec_json)
    return run_scenario(spec, engine=engine).signature()


def _registry_sig(point):
    """Pool-worker entry point: run a JSON spec inside a fresh registry
    scope and hash everything the run recorded (links, devices, rpc,
    scenario gauges — timers excluded by construction)."""
    spec_json, engine = point
    spec = ScenarioSpec.from_json(spec_json)
    with scoped() as reg:
        run_scenario(spec, engine=engine)
        text = json.dumps(reg.snapshot(), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


SPEC = preset("reflector-tcs").scaled(0.5)
POINTS = [(SPEC.to_json(), "packet"),
          (SPEC.with_seed(7).to_json(), "packet"),
          (SPEC.to_json(), "fluid")]


class TestDeterminism:
    def test_repeated_serial_runs_are_byte_identical(self):
        for engine in ("packet", "fluid"):
            first = run_scenario(SPEC, engine=engine)
            second = run_scenario(SPEC, engine=engine)
            assert first == second
            assert first.signature() == second.signature()

    def test_seed_actually_matters(self):
        a = run_scenario(SPEC, engine="packet")
        b = run_scenario(SPEC.with_seed(7), engine="packet")
        assert a.signature() != b.signature()

    def test_parallel_map_matches_serial(self):
        serial = [_sig(p) for p in POINTS]
        fanned = parallel_map(_sig, POINTS, workers=2)
        assert fanned == serial

    def test_process_pool_matches_serial(self):
        serial = [_sig(p) for p in POINTS]
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                pooled = list(pool.map(_sig, POINTS))
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable here: {exc}")
        assert pooled == serial


class TestRegistryDeterminism:
    """The full telemetry snapshot — not just the MetricSet — is part of
    the determinism contract: equal runs record byte-equal registries."""

    def test_repeated_runs_record_identical_registries(self):
        first = _registry_sig(POINTS[0])
        second = _registry_sig(POINTS[0])
        assert first == second

    def test_seed_changes_the_recorded_registry(self):
        assert _registry_sig(POINTS[0]) != _registry_sig(POINTS[1])

    def test_parallel_map_matches_serial(self):
        serial = [_registry_sig(p) for p in POINTS]
        fanned = parallel_map(_registry_sig, POINTS, workers=2)
        assert fanned == serial

    def test_process_pool_matches_serial(self):
        serial = [_registry_sig(p) for p in POINTS]
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                pooled = list(pool.map(_registry_sig, POINTS))
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable here: {exc}")
        assert pooled == serial
