"""The control-plane messaging layer: retries, backoff, circuit breaking.

The key invariant: a channel whose endpoint is healthy is *transparent* —
the wrapped function runs exactly once, no RNG is consumed, no delay is
accounted.  Failures are retried deterministically and surface as
:class:`RetryExhausted`, which existing ``except ControlPlaneUnavailable``
fallbacks catch unchanged.
"""

import pytest

from repro.core.rpc import CircuitBreaker, ControlChannel, RetryPolicy
from repro.errors import ControlPlaneUnavailable, RetryExhausted


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class AlwaysDrop:
    def drop_message(self, channel, op, now):
        return True


class NeverDrop:
    def drop_message(self, channel, op, now):
        return False


class TestHealthyChannel:
    def test_delivers_exactly_once(self):
        chan = ControlChannel("t")
        calls = []
        out = chan.call("op", lambda x: calls.append(x) or x + 1, 41)
        assert out == 42
        assert calls == [41]
        assert chan.stats.calls == chan.stats.delivered == 1
        assert chan.stats.retries == chan.stats.drops == 0
        assert chan.stats.backoff_time == 0.0

    def test_application_errors_propagate_without_retry(self):
        chan = ControlChannel("t")
        attempts = []

        def fail():
            attempts.append(1)
            raise ValueError("delivered but refused")

        with pytest.raises(ValueError):
            chan.call("op", fail)
        assert attempts == [1]  # the refusal is authoritative, not retried
        assert chan.stats.retries == 0

    def test_kwargs_pass_through(self):
        chan = ControlChannel("t")
        assert chan.call("op", dict, a=1) == {"a": 1}


class TestRetries:
    def test_exhaustion_raises_retry_exhausted(self):
        chan = ControlChannel("t", down_fn=lambda: True)
        with pytest.raises(RetryExhausted):
            chan.call("op", lambda: "never")
        assert chan.stats.drops == chan.policy.attempts
        assert chan.stats.retries == chan.policy.attempts - 1
        assert chan.stats.exhausted == 1
        assert chan.stats.backoff_time > 0.0

    def test_retry_exhausted_is_control_plane_unavailable(self):
        # existing `except ControlPlaneUnavailable` failover paths must
        # keep catching the new exception
        assert issubclass(RetryExhausted, ControlPlaneUnavailable)

    def test_transient_outage_recovered_by_retry(self):
        down = [True, True]

        def down_fn():
            return down.pop() if down else False

        chan = ControlChannel("t", down_fn=down_fn)
        assert chan.call("op", lambda: "ok") == "ok"
        assert chan.stats.retries == 2
        assert chan.stats.delivered == 1

    def test_undelivered_attempts_never_execute_fn(self):
        chan = ControlChannel("t", down_fn=lambda: True)
        ran = []
        with pytest.raises(RetryExhausted):
            chan.call("op", lambda: ran.append(1))
        assert ran == []  # transport failure = fn never invoked

    def test_injected_loss_drops_and_recovers(self):
        lossy = ControlChannel("t", injector=AlwaysDrop())
        with pytest.raises(RetryExhausted):
            lossy.call("op", lambda: "x")
        clean = ControlChannel("t", injector=NeverDrop())
        assert clean.call("op", lambda: "x") == "x"


class TestBackoff:
    def test_deterministic_across_channels(self):
        a = ControlChannel("same", down_fn=lambda: True, seed=5)
        b = ControlChannel("same", down_fn=lambda: True, seed=5)
        for chan in (a, b):
            with pytest.raises(RetryExhausted):
                chan.call("op", lambda: None)
        assert a.stats.backoff_time == b.stats.backoff_time

    def test_bounded_exponential_shape(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3,
                             jitter=0.0)

        class NoJitterRng:
            def random(self):
                return 0.0

        rng = NoJitterRng()
        assert policy.backoff(0, rng) == pytest.approx(0.1)
        assert policy.backoff(1, rng) == pytest.approx(0.2)
        assert policy.backoff(2, rng) == pytest.approx(0.3)  # capped
        assert policy.backoff(9, rng) == pytest.approx(0.3)

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, max_delay=1.0,
                             jitter=0.5)

        class MaxJitterRng:
            def random(self):
                return 0.999999

        assert policy.backoff(0, MaxJitterRng()) < 0.1 * 1.5 + 1e-9


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, reset_after=1.0, clock=clock)
        chan = ControlChannel("t", down_fn=lambda: True, breaker=breaker,
                              clock=clock)
        for _ in range(3):
            with pytest.raises(RetryExhausted):
                chan.call("op", lambda: None)
        assert breaker.state == "open"
        # while open: rejected instantly, no attempts burned
        drops_before = chan.stats.drops
        with pytest.raises(ControlPlaneUnavailable):
            chan.call("op", lambda: None)
        assert chan.stats.rejected == 1
        assert chan.stats.drops == drops_before

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
        down = [True]
        chan = ControlChannel("t", down_fn=lambda: bool(down),
                              breaker=breaker, clock=clock)
        with pytest.raises(RetryExhausted):
            chan.call("op", lambda: None)
        assert breaker.state == "open"
        clock.t = 2.0
        assert breaker.state == "half-open"
        down.clear()  # endpoint healed; the probe succeeds
        assert chan.call("op", lambda: "ok") == "ok"
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_after=1.0, clock=clock)
        chan = ControlChannel("t", down_fn=lambda: True, breaker=breaker,
                              clock=clock)
        with pytest.raises(RetryExhausted):
            chan.call("op", lambda: None)
        clock.t = 1.5
        with pytest.raises(RetryExhausted):  # half-open probe fails
            chan.call("op", lambda: None)
        assert breaker.state == "open"
        assert breaker.times_opened == 2

    def test_channel_reset_restores_pristine_state(self):
        chan = ControlChannel("t", down_fn=lambda: True)
        with pytest.raises(RetryExhausted):
            chan.call("op", lambda: None)
        chan.reset()
        assert chan.stats.calls == 0
        assert chan.breaker.state == "closed"
