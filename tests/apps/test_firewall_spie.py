"""Tests for the distributed firewall and TCS-based SPIE traceback apps."""


from repro.attack import (
    AttackScenario,
    ConnectionPool,
    ProtocolMisuseAttack,
    ScenarioConfig,
)
from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import DistributedFirewallApp, FirewallRule, SpieTracebackApp
from repro.net import Network, Packet, TopologyBuilder


def service_for_victim(net, victim_asn, user_id="victim-co"):
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    nms = tcsp.contract_isp("isp-all", net.topology.as_numbers)
    prefix = net.topology.prefix_of(victim_asn)
    authority.record_allocation(prefix, user_id)
    user, cert = tcsp.register_user(user_id, [prefix])
    return TrafficControlService(tcsp, user, cert, home_nms=nms)


class TestDistributedFirewall:
    def _setup(self):
        net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=6))
        stubs = net.topology.stub_ases
        victim = net.add_host(stubs[0])
        peers = [net.add_host(a) for a in stubs[1:3]]
        attacker = net.add_host(stubs[3])
        pool = ConnectionPool(victim)
        for p in peers:
            pool.establish(p)
        svc = service_for_victim(net, victim.asn)
        return net, victim, peers, attacker, pool, svc

    def test_rst_teardown_attack_filtered(self):
        """Sec. 4.3: protocol-misuse teardown packets are filtered out."""
        net, victim, peers, attacker, pool, svc = self._setup()
        fw = DistributedFirewallApp(svc, [FirewallRule.block_teardown_rst(),
                                          FirewallRule.block_icmp_unreachable()])
        fw.deploy()
        ProtocolMisuseAttack(net, attacker, pool, rate_pps=50.0,
                             duration=0.5, mode="rst", seed=1).launch()
        net.run()
        assert pool.survival_fraction == 1.0
        assert fw.dropped() > 0

    def test_without_firewall_connections_die(self):
        net, victim, peers, attacker, pool, svc = self._setup()
        ProtocolMisuseAttack(net, attacker, pool, rate_pps=50.0,
                             duration=0.5, mode="rst", seed=1).launch()
        net.run()
        assert pool.survival_fraction == 0.0

    def test_port_blocking_rule(self):
        net, victim, peers, attacker, pool, svc = self._setup()
        fw = DistributedFirewallApp(svc, [FirewallRule.block_port(53)])
        fw.deploy()
        attacker.send(Packet.udp(attacker.address, victim.address, dport=53,
                                 kind="attack"))
        attacker.send(Packet.udp(attacker.address, victim.address, dport=80,
                                 kind="legit"))
        net.run()
        assert victim.received_by_kind.get("attack", 0) == 0
        assert victim.received_by_kind.get("legit", 0) == 1

    def test_firewall_only_affects_owner_traffic(self):
        """Scope confinement: the same RST between two *other* hosts flows."""
        net, victim, peers, attacker, pool, svc = self._setup()
        fw = DistributedFirewallApp(svc, [FirewallRule.block_teardown_rst()])
        fw.deploy()
        bystander = net.add_host(net.topology.stub_ases[1])
        attacker.send(Packet.tcp_rst(attacker.address, bystander.address,
                                     kind="other-rst"))
        net.run()
        assert bystander.received_by_kind.get("other-rst", 0) == 1

    def test_rate_limit_and_logging_options(self):
        net, victim, peers, attacker, pool, svc = self._setup()
        fw = DistributedFirewallApp(svc, [], rate_limit_bps=1e9,
                                    with_logging=True)
        fw.deploy(DeploymentScope.explicit([victim.asn]))
        attacker.send(Packet.udp(attacker.address, victim.address))
        net.run()
        assert victim.received_packets == 1
        assert svc.read_logs()


class TestSpieTracebackApp:
    def test_traces_spoofed_packet_to_agent_as(self):
        net = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=3))
        cfg = ScenarioConfig(attack_kind="direct-spoofed", n_agents=4,
                             attack_rate_pps=100.0, duration=0.4, seed=7)
        sc = AttackScenario(net, cfg)
        svc = service_for_victim(net, sc.victim_asn)
        app = SpieTracebackApp(svc)
        app.deploy()
        sc.victim.record = True
        sc.run()
        pkt = next(p for _, p in sc.victim.log if p.kind == "attack")
        result = app.trace(pkt, sc.victim_asn)
        true_asn = next(a.asn for a in sc.agents if a.name == pkt.true_origin)
        assert result.origin_asn == true_asn
        assert not result.coverage_gap

    def test_saw_negative(self):
        net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=3))
        victim_asn = net.topology.stub_ases[0]
        svc = service_for_victim(net, victim_asn)
        app = SpieTracebackApp(svc)
        app.deploy()
        ghost = Packet.udp(net.add_host(victim_asn).address,
                           net.add_host(net.topology.stub_ases[1]).address)
        assert not app.saw(victim_asn, ghost)
        result = app.trace(ghost, victim_asn)
        assert result.origin_asn is None

    def test_partial_scope_has_coverage_gaps(self):
        net = Network(TopologyBuilder.line(5))
        victim_asn = 4
        svc = service_for_victim(net, victim_asn)
        app = SpieTracebackApp(svc)
        # deploy only near the victim: trace cannot reach the source AS
        app.deploy(DeploymentScope.explicit([3, 4]))
        src = net.add_host(0)
        victim = net.add_host(victim_asn, record=True)
        src.send(Packet.udp(src.address, victim.address))
        net.run()
        (_, pkt), = victim.log
        result = app.trace(pkt, victim_asn)
        assert result.origin_asn == 3  # the walk stops at the coverage edge
