"""Tests for protocol-misuse (RST/ICMP teardown) attacks."""

import pytest

from repro.attack import ConnectionPool, ProtocolMisuseAttack
from repro.errors import AttackConfigError
from repro.net import Network, Packet, TopologyBuilder


def setup():
    net = Network(TopologyBuilder.hierarchical(2, 2, 3, seed=4))
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0])
    peers = [net.add_host(a) for a in stubs[1:4]]
    attacker = net.add_host(stubs[4])
    pool = ConnectionPool(victim)
    for p in peers:
        pool.establish(p)
    return net, victim, peers, attacker, pool


class TestConnectionPool:
    def test_initial_state(self):
        net, victim, peers, attacker, pool = setup()
        assert pool.alive_count == 3
        assert pool.survival_fraction == 1.0

    def test_rst_from_peer_kills_connection(self):
        net, victim, peers, attacker, pool = setup()
        rst = Packet.tcp_rst(peers[0].address, victim.address)
        victim.receive(rst, None)
        assert pool.alive_count == 2
        killed = [c for c in pool.connections if not c.alive]
        assert killed[0].peer == int(peers[0].address)
        assert killed[0].killed_by == "rst"

    def test_rst_from_stranger_harmless(self):
        net, victim, peers, attacker, pool = setup()
        rst = Packet.tcp_rst(attacker.address, victim.address)
        victim.receive(rst, None)
        assert pool.alive_count == 3

    def test_ordinary_traffic_harmless(self):
        net, victim, peers, attacker, pool = setup()
        victim.receive(Packet.udp(peers[0].address, victim.address), None)
        victim.receive(Packet.tcp_syn(peers[0].address, victim.address), None)
        assert pool.alive_count == 3

    def test_one_rst_kills_one_connection(self):
        net, victim, peers, attacker, pool = setup()
        pool.establish(peers[0], peer_port=40001)  # second conn to same peer
        victim.receive(Packet.tcp_rst(peers[0].address, victim.address), None)
        assert pool.alive_count == 3  # only one of the four died


class TestProtocolMisuseAttack:
    def test_rst_flood_kills_connections(self):
        net, victim, peers, attacker, pool = setup()
        attack = ProtocolMisuseAttack(net, attacker, pool, rate_pps=50.0,
                                      duration=0.5, mode="rst", seed=1)
        attack.launch()
        net.run()
        assert pool.survival_fraction == 0.0

    def test_icmp_flood_kills_connections(self):
        net, victim, peers, attacker, pool = setup()
        attack = ProtocolMisuseAttack(net, attacker, pool, rate_pps=50.0,
                                      duration=0.5, mode="icmp", seed=1)
        attack.launch()
        net.run()
        assert pool.survival_fraction < 1.0

    def test_packets_are_spoofed_ground_truth(self):
        net, victim, peers, attacker, pool = setup()
        victim.record = True
        ProtocolMisuseAttack(net, attacker, pool, rate_pps=20.0, duration=0.3,
                             seed=2).launch()
        net.run()
        misuse = [p for _, p in victim.log if p.kind == "attack-misuse"]
        assert misuse
        assert all(p.spoofed for p in misuse)
        assert all(p.true_origin == attacker.name for p in misuse)

    def test_bad_mode(self):
        net, victim, peers, attacker, pool = setup()
        with pytest.raises(AttackConfigError):
            ProtocolMisuseAttack(net, attacker, pool, mode="syn").launch()

    def test_empty_pool_rejected(self):
        net, victim, peers, attacker, _ = setup()
        empty = ConnectionPool(net.add_host(net.topology.stub_ases[5]))
        with pytest.raises(AttackConfigError):
            ProtocolMisuseAttack(net, attacker, empty).launch()


class TestScenarioIntegration:
    def test_scenario_classes(self):
        from repro.attack import AttackScenario, ScenarioConfig

        for kind in ("direct-spoofed", "direct-unspoofed", "reflector"):
            net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=6))
            cfg = ScenarioConfig(attack_kind=kind, n_agents=4, n_reflectors=3,
                                 duration=0.3, attack_rate_pps=50.0, seed=7)
            sc = AttackScenario(net, cfg)
            m = sc.run()
            assert m.attack_packets_at_victim > 0
            assert m.legit_sent > 0
            assert 0.0 <= m.legit_goodput <= 1.0

    def test_invalid_kind(self):
        from repro.attack import ScenarioConfig

        with pytest.raises(AttackConfigError):
            ScenarioConfig(attack_kind="nuclear")

    def test_fluid_views(self):
        from repro.attack import AttackScenario, ScenarioConfig
        from repro.net import FluidNetwork

        net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=6))
        sc = AttackScenario(net, ScenarioConfig(attack_kind="direct-spoofed",
                                                n_agents=3, seed=8))
        flows = sc.as_flows()
        assert any(f.kind == "attack" for f in flows)
        assert any(f.kind == "legit" for f in flows)
        with pytest.raises(AttackConfigError):
            sc.fluid_reflector(FluidNetwork(net.topology))
