"""Tests for packet trace recording."""

import pytest

from repro.net import Network, Packet, TopologyBuilder, TraceRecorder


class TestTraceRecorder:
    def _run(self, recorder, n=10):
        from repro.net import LinkParams
        from repro.util.units import Mbps

        net = Network(TopologyBuilder.line(3))
        fat = LinkParams(bandwidth=Mbps(1000), delay=0.001, buffer_bytes=10**7)
        a = net.add_host(0, access=fat)
        b = net.add_host(2)
        net.routers[1].add_filter("trace", recorder)
        for i in range(n):
            a.send(Packet.udp(a.address, b.address, sport=i))
        net.run()
        return net, a, b

    def test_records_all_at_full_sampling(self):
        rec = TraceRecorder(sample_rate=1.0)
        net, a, b = self._run(rec)
        assert len(rec) == 10
        assert rec.observed == 10
        assert b.received_packets == 10  # pass-through, never drops

    def test_sampling_reduces_records(self):
        rec = TraceRecorder(sample_rate=0.3, seed=1)
        self._run(rec, n=200)
        assert 20 <= len(rec) <= 120
        assert rec.observed == 200

    def test_record_fields(self):
        rec = TraceRecorder()
        net, a, b = self._run(rec, n=1)
        r = rec.records[0]
        assert r.asn == 1
        assert r.src == int(a.address)
        assert r.dst == int(b.address)
        assert r.proto == "UDP"
        assert r.ingress_asn == 0

    def test_by_uid_ordered(self):
        net = Network(TopologyBuilder.line(4))
        a = net.add_host(0)
        b = net.add_host(3)
        rec = TraceRecorder()
        net.routers[1].add_filter("t", rec)
        net.routers[2].add_filter("t", rec)
        pkt = Packet.udp(a.address, b.address)
        a.send(pkt)
        net.run()
        obs = rec.by_uid(pkt.uid)
        assert [o.asn for o in obs] == [1, 2]
        assert obs[0].time <= obs[1].time

    def test_unique_sources(self):
        rec = TraceRecorder()
        net, a, b = self._run(rec)
        assert rec.unique_sources() == {int(a.address)}

    def test_max_records_bound(self):
        rec = TraceRecorder(max_records=3)
        self._run(rec, n=10)
        assert len(rec) == 3
        assert rec.observed == 10

    def test_inter_arrival_times(self):
        rec = TraceRecorder()
        self._run(rec, n=5)
        deltas = rec.inter_arrival_times()
        assert len(deltas) == 4
        assert (deltas >= 0).all()

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            TraceRecorder(sample_rate=1.5)
