"""Shortest-path AS routing.

Each router needs a next-hop table toward every destination AS.  We compute
one BFS tree per destination (unweighted shortest paths — adequate for all
the paper's placement arguments; BGP policy routing is a documented
non-goal) and invert it into per-source next-hop maps.

``RoutingTable`` additionally answers "which interface did this packet
*legitimately* enter from?" — the information route-based packet filtering
(Park & Lee [15], cited in Sec. 3.2) and the adaptive device's context-aware
anti-spoofing rely on.
"""

from __future__ import annotations

from typing import Iterator


from repro.errors import RoutingError
from repro.net.topology import Topology

__all__ = ["RoutingTable", "build_routing", "as_path"]


class RoutingTable:
    """Per-AS next-hop map: destination ASN -> neighbour ASN.

    A destination equal to the local ASN maps to itself (local delivery).
    """

    __slots__ = ("asn", "_next_hop", "_expected_in")

    def __init__(self, asn: int, next_hop: dict[int, int],
                 expected_in: dict[int, frozenset[int]]) -> None:
        self.asn = asn
        self._next_hop = next_hop
        self._expected_in = expected_in

    def next_hop(self, dst_asn: int) -> int:
        """Neighbour toward ``dst_asn`` (== own asn for local delivery)."""
        try:
            return self._next_hop[dst_asn]
        except KeyError as exc:
            raise RoutingError(f"AS {self.asn}: no route to AS {dst_asn}") from exc

    def has_route(self, dst_asn: int) -> bool:
        return dst_asn in self._next_hop

    def expected_ingress(self, src_asn: int) -> frozenset[int]:
        """Neighbours from which traffic sourced at ``src_asn`` may arrive.

        Under symmetric shortest-path routing this is the set of neighbours
        that lie on a shortest path from ``src_asn`` to this AS.  Route-based
        filtering drops packets arriving on other interfaces.
        """
        return self._expected_in.get(src_asn, frozenset())

    def __len__(self) -> int:
        return len(self._next_hop)


def build_routing(topology: Topology) -> dict[int, RoutingTable]:
    """Compute routing tables for every AS in ``topology``.

    Complexity O(V * (V + E)) — one BFS per destination.  For each pair
    (src, dst) the next hop is the BFS-tree parent of ``src`` in the tree
    rooted at ``dst`` (ties broken by lowest neighbour ASN, so routing is
    deterministic across runs).
    """
    g = topology.graph
    nodes = sorted(g.nodes)
    next_hop: dict[int, dict[int, int]] = {asn: {asn: asn} for asn in nodes}
    # dist[dst][v]: hop count v -> dst, reused for expected-ingress sets.
    dist: dict[int, dict[int, int]] = {}
    for dst in nodes:
        parent: dict[int, int] = {dst: dst}
        d = {dst: 0}
        frontier = [dst]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in sorted(g.neighbors(u)):
                    if v not in d:
                        d[v] = d[u] + 1
                        parent[v] = u
                        nxt.append(v)
            frontier = nxt
        if len(d) != len(nodes):
            missing = set(nodes) - set(d)
            raise RoutingError(f"graph disconnected: {sorted(missing)[:5]} unreachable from {dst}")
        dist[dst] = d
        for v in nodes:
            if v != dst:
                next_hop[v][dst] = parent[v]
    # expected ingress: neighbour n of v is a valid ingress for source s iff
    # dist(s, n) + 1 == dist(s, v)  (n lies on some shortest path s -> v).
    tables: dict[int, RoutingTable] = {}
    for v in nodes:
        expected: dict[int, frozenset[int]] = {}
        neighbors = sorted(g.neighbors(v))
        for s in nodes:
            if s == v:
                continue
            ds = dist[s]
            expected[s] = frozenset(n for n in neighbors if ds[n] + 1 == ds[v])
        tables[v] = RoutingTable(v, next_hop[v], expected)
    return tables


def as_path(tables: dict[int, RoutingTable], src_asn: int, dst_asn: int,
            max_hops: int = 512) -> list[int]:
    """The AS-level path ``[src, ..., dst]`` implied by the tables."""
    path = [src_asn]
    current = src_asn
    while current != dst_asn:
        current = tables[current].next_hop(dst_asn)
        path.append(current)
        if len(path) > max_hops:
            raise RoutingError(f"routing loop between AS {src_asn} and AS {dst_asn}")
    return path


def paths_through(tables: dict[int, RoutingTable], pairs: list[tuple[int, int]]) -> Iterator[list[int]]:
    """AS paths for many (src, dst) pairs."""
    for s, d in pairs:
        yield as_path(tables, s, d)
