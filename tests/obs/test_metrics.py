"""Core telemetry semantics: instruments, families, registry views."""

import json

import pytest

from repro.errors import MetricError
from repro.obs import (
    CATALOG,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    declare,
    get_registry,
    scoped,
    snapshot_delta,
)


class TestInstruments:
    def test_counter_inc_and_direct_value(self):
        c = Counter()
        c.inc()
        c.inc(4)
        c.value += 1  # the hot-path idiom
        assert c.get() == 6
        c.reset()
        assert c.get() == 0

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.get() == 8

    def test_histogram_buckets_sum_count(self):
        h = Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        got = h.get()
        assert got["buckets"] == {"le_1": 1, "le_2": 1, "le_inf": 1}
        assert got["count"] == 3
        assert got["sum"] == pytest.approx(101.0)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(MetricError):
            Histogram(bounds=(2.0, 1.0))


class TestFamilies:
    def test_same_labels_return_same_child(self):
        reg = MetricRegistry()
        a = reg.counter("x.hits", link="l1")
        b = reg.counter("x.hits", link="l1")
        assert a is b

    def test_fresh_replaces_the_child(self):
        reg = MetricRegistry()
        a = reg.counter("x.hits", link="l1")
        a.inc(5)
        b = reg.family("x.hits", "counter", ("link",)).labelled(
            fresh=True, link="l1")
        assert b is not a
        assert b.get() == 0
        assert reg.snapshot() == {"x.hits{link=l1}": 0}

    def test_label_cardinality_guard(self):
        reg = MetricRegistry()
        family = reg.family("x.leak", "counter", ("pkt",), max_series=3)
        for i in range(3):
            family.labelled(pkt=str(i))
        with pytest.raises(MetricError, match="cardinality"):
            family.labelled(pkt="3")
        # existing series stay reachable after the guard trips
        assert family.labelled(pkt="0") is family.labelled(pkt="0")

    def test_wrong_label_names_raise(self):
        reg = MetricRegistry()
        with pytest.raises(MetricError, match="takes labels"):
            reg.family("x.hits", "counter", ("link",)).labelled(device="d1")

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x.hits")
        with pytest.raises(MetricError, match="conflicting"):
            reg.gauge("x.hits")


class TestDeclarations:
    def test_declare_is_idempotent_and_conflicts_raise(self):
        a = declare("test.obs.decl", "counter", labels=("k",))
        b = declare("test.obs.decl", "counter", labels=("k",))
        assert a is b
        assert CATALOG["test.obs.decl"] is a
        with pytest.raises(MetricError, match="already declared"):
            declare("test.obs.decl", "gauge", labels=("k",))

    def test_decl_resolves_against_the_ambient_registry(self):
        decl = declare("test.obs.ambient", "counter")
        with scoped() as reg:
            inner = decl.labelled()
            inner.inc(3)
            assert reg.snapshot() == {"test.obs.ambient": 3}
        # outside the scope, the default registry is untouched
        assert "test.obs.ambient" not in get_registry().snapshot()


class TestSnapshots:
    def test_snapshot_keys_are_sorted_and_labelled(self):
        reg = MetricRegistry()
        reg.counter("b.count").inc(2)
        reg.counter("a.count", link="l2").inc()
        reg.counter("a.count", link="l1").inc(7)
        snap = reg.snapshot()
        assert list(snap) == ["a.count{link=l1}", "a.count{link=l2}", "b.count"]
        assert snap["a.count{link=l1}"] == 7

    def test_delta_since_an_earlier_snapshot(self):
        reg = MetricRegistry()
        c = reg.counter("x.hits")
        c.inc(2)
        before = reg.snapshot()
        c.inc(3)
        reg.counter("x.new").inc()  # appears after `before`: counts from 0
        assert reg.delta(before) == {"x.hits": 3, "x.new": 1}

    def test_delta_diffs_histograms_per_field(self):
        before = {"h": {"buckets": {"le_1": 1, "le_inf": 0}, "sum": 0.5,
                        "count": 1}}
        after = {"h": {"buckets": {"le_1": 1, "le_inf": 2}, "sum": 9.5,
                       "count": 3}}
        assert snapshot_delta(before, after) == {
            "h": {"buckets": {"le_1": 0, "le_inf": 2}, "sum": 9.0, "count": 2}}

    def test_timers_stay_out_of_the_deterministic_snapshot(self):
        reg = MetricRegistry()
        reg.counter("x.hits").inc()
        with reg.span("x.elapsed"):
            pass
        assert list(reg.snapshot()) == ["x.hits"]
        timings = reg.timings()
        assert list(timings) == ["x.elapsed"]
        assert timings["x.elapsed"]["count"] == 1

    def test_span_accepts_a_simulated_clock(self):
        reg = MetricRegistry()
        ticks = iter([2.0, 5.5])
        with reg.span("x.sim", clock=lambda: next(ticks)):
            pass
        assert reg.timings()["x.sim"] == {"count": 1, "total_s": 3.5}

    def test_prefix_reset(self):
        reg = MetricRegistry()
        reg.counter("a.one").inc(4)
        reg.counter("b.two").inc(9)
        assert reg.reset(prefix="a.") == 1
        assert reg.snapshot() == {"a.one": 0, "b.two": 9}

    def test_jsonl_round_trips(self):
        reg = MetricRegistry()
        reg.counter("x.hits", link="l1").inc(3)
        with reg.span("x.elapsed"):
            pass
        rows = [json.loads(line) for line in reg.to_jsonl().splitlines()]
        assert {r["name"] for r in rows} == {"x.hits", "x.elapsed"}
        hit = next(r for r in rows if r["name"] == "x.hits")
        assert hit == {"kind": "counter", "labels": {"link": "l1"},
                       "name": "x.hits", "value": 3}


class TestScoping:
    def test_nested_scopes_isolate(self):
        with scoped() as outer:
            get_registry().counter("x.depth").inc()
            with scoped() as inner:
                get_registry().counter("x.depth").inc(10)
            assert inner.snapshot() == {"x.depth": 10}
            assert outer.snapshot() == {"x.depth": 1}

    def test_scoped_accepts_an_existing_registry(self):
        mine = MetricRegistry("mine")
        with scoped(mine) as reg:
            assert reg is mine
            assert get_registry() is mine
        assert get_registry() is not mine
