"""Tests for the Sec. 4.3 anti-spoofing application."""


from repro.attack import AttackScenario, ScenarioConfig
from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import AntiSpoofApp, TcsAntiSpoofMitigation
from repro.net import Flow, FlowSet, FluidNetwork, Network, TopologyBuilder


def world_with_attack(kind="reflector", seed=5):
    net = Network(TopologyBuilder.hierarchical(2, 2, 6, seed=3))
    cfg = ScenarioConfig(attack_kind=kind, n_agents=5, n_reflectors=4,
                         attack_rate_pps=300.0, duration=0.5, seed=seed)
    sc = AttackScenario(net, cfg)
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    nms = tcsp.contract_isp("isp-all", net.topology.as_numbers)
    prefix = net.topology.prefix_of(sc.victim_asn)
    authority.record_allocation(prefix, "victim-co")
    user, cert = tcsp.register_user("victim-co", [prefix])
    svc = TrafficControlService(tcsp, user, cert, home_nms=nms)
    return net, sc, svc


class TestAntiSpoofApp:
    def test_stops_reflector_attack_at_source(self):
        """The headline Sec. 4.3 result: worldwide anti-spoofing rules kill
        the reflector attack before it reaches any reflector."""
        net, sc, svc = world_with_attack("reflector")
        app = AntiSpoofApp(svc)
        app.deploy()
        m = sc.run()
        assert m.attack_packets_at_victim == 0
        assert m.legit_goodput == 1.0
        assert m.byte_hops_attack == 0  # no wasted transport work
        assert app.dropped() > 0

    def test_stops_spoofed_direct_flood(self):
        net, sc, svc = world_with_attack("direct-spoofed")
        AntiSpoofApp(svc).deploy()
        m = sc.run()
        # only floods spoofing the *protected* prefix are caught; random
        # spoofing rarely hits it, so the direct flood mostly persists
        assert m.legit_goodput > 0.0  # sanity: network still works

    def test_zero_collateral(self):
        """Sec. 4.5: other parties' traffic is never affected."""
        net, sc, svc = world_with_attack("reflector")
        AntiSpoofApp(svc).deploy()
        m = sc.run()
        assert m.collateral_fraction == 0.0

    def test_partial_deployment_partially_effective(self):
        net_full, sc_full, svc_full = world_with_attack("reflector", seed=9)
        AntiSpoofApp(svc_full).deploy(DeploymentScope.stub_borders())
        full = sc_full.run()
        net_half, sc_half, svc_half = world_with_attack("reflector", seed=9)
        AntiSpoofApp(svc_half).deploy(
            DeploymentScope.stub_borders(fraction=0.3, seed=1))
        half = sc_half.run()
        assert full.attack_packets_at_victim <= half.attack_packets_at_victim


class TestTcsAntiSpoofMitigation:
    def test_packet_level_standalone(self):
        from repro.attack import ReflectorAttack

        net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=2))
        stubs = net.topology.stub_ases
        victim = net.add_host(stubs[0])
        agents = [net.add_host(a) for a in stubs[1:3]]
        reflectors = [net.add_host(a) for a in stubs[3:6]]
        prefix = net.topology.prefix_of(victim.asn)
        mit = TcsAntiSpoofMitigation([prefix], [victim.asn])
        mit.deploy(net, net.topology.as_numbers)
        ReflectorAttack(net, agents, reflectors, victim, rate_pps=100.0,
                        duration=0.3, seed=1).launch()
        net.run()
        assert victim.received_by_kind.get("attack-reflected", 0) == 0

    def test_transit_ases_skipped(self):
        net = Network(TopologyBuilder.hierarchical(2, 2, 3, seed=2))
        mit = TcsAntiSpoofMitigation([net.topology.prefix_of(0)], [0])
        mit.deploy(net, net.topology.as_numbers)
        assert mit.deployed_asns == set(net.topology.stub_ases)

    def test_fluid_filter_semantics(self):
        topo = TopologyBuilder.hierarchical(2, 2, 5, seed=4)
        fluid = FluidNetwork(topo)
        stubs = topo.stub_ases
        victim_asn, agent_asn, refl_asn = stubs[0], stubs[1], stubs[2]
        mit = TcsAntiSpoofMitigation([topo.prefix_of(victim_asn)], [victim_asn])
        mit.deployed_asns = {agent_asn}
        filt = mit.fluid_filter()
        flows = FlowSet([
            # spoofed request claiming the victim: killed at source
            Flow(agent_asn, refl_asn, 1e6, kind="attack-request",
                 claimed_src_asn=victim_asn),
            # legit flow from the same AS: untouched
            Flow(agent_asn, refl_asn, 1e6, kind="legit"),
            # victim's own outbound traffic: untouched (it IS the owner)
            Flow(victim_asn, refl_asn, 1e6, kind="legit-victim"),
        ])
        r = fluid.evaluate(flows, filters=[filt])
        assert r.survival_fraction("attack-request") == 0.0
        assert r.survival_fraction("legit") == 1.0
        assert r.survival_fraction("legit-victim") == 1.0
