"""Applications built on the traffic control service (paper Secs. 4.3-4.4).

* :mod:`antispoof` — worldwide anti-spoofing / DDoS reflector defense
  (the headline application of Sec. 4.3),
* :mod:`firewall` — distributed firewall-like filtering, incl. the
  protocol-misuse (RST/ICMP teardown) rules,
* :mod:`spie_traceback` — worldwide packet traceback service on the TCS,
* :mod:`triggers` — automated reaction to network anomalies,
* :mod:`debugging` — network debugging and traffic statistics.
"""

from repro.core.apps.antispoof import AntiSpoofApp, TcsAntiSpoofMitigation
from repro.core.apps.firewall import DistributedFirewallApp, FirewallRule
from repro.core.apps.spie_traceback import SpieTracebackApp
from repro.core.apps.triggers import AutoReactionApp
from repro.core.apps.debugging import NetworkDebuggingApp, LinkEstimate
from repro.core.apps.statistics import DistributedStatisticsApp, TrafficMatrixCollector, TrafficReport
from repro.core.apps.defender import DefenseAction, ReactiveDefender

__all__ = [
    "AntiSpoofApp",
    "TcsAntiSpoofMitigation",
    "DistributedFirewallApp",
    "FirewallRule",
    "SpieTracebackApp",
    "AutoReactionApp",
    "NetworkDebuggingApp",
    "LinkEstimate",
    "DistributedStatisticsApp",
    "TrafficMatrixCollector",
    "TrafficReport",
    "ReactiveDefender",
    "DefenseAction",
]
