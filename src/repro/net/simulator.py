"""Deterministic discrete-event simulation engine.

A minimal but complete event loop: a binary heap of ``(time, seq, event)``
where ``seq`` is a monotone tiebreaker, so runs are bit-for-bit reproducible
regardless of callback identity.  All network elements (links, hosts,
attack processes, trigger components) schedule callbacks here.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq)."""

    time: float
    seq: int
    fn: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); it stays in the heap)."""
        self.cancelled = True


class Simulator:
    """Discrete-event simulator with deterministic ordering.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self.running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay:.6f}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time:.6f} < now {self._now:.6f}")
        ev = Event(time=time, seq=next(self._seq), fn=fn, args=args)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_every(self, interval: float, fn: Callable[..., Any], *args: Any,
                       until: Optional[float] = None, start: Optional[float] = None) -> Event:
        """Schedule a periodic callback (first firing at ``start`` or now+interval).

        The callback may return False to stop the recurrence.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, got {interval}")
        first = self._now + interval if start is None else start

        def tick() -> None:
            if until is not None and self._now > until:
                return
            result = fn(*args)
            if result is False:
                return
            if until is None or self._now + interval <= until:
                self.schedule(interval, tick)

        return self.schedule_at(first, tick)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events processed."""
        processed_before = self._processed
        self.running = True
        try:
            while self._heap:
                if max_events is not None and self._processed - processed_before >= max_events:
                    break
                ev = self._heap[0]
                if until is not None and ev.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                if ev.cancelled:
                    continue
                self._now = ev.time
                ev.fn(*ev.args)
                self._processed += 1
            else:
                if until is not None:
                    self._now = max(self._now, until)
        finally:
            self.running = False
        return self._processed - processed_before

    def reset(self) -> None:
        """Discard all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._now = 0.0
        self._processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._heap)})"
