"""Network debugging and traffic statistics (paper Sec. 4.4).

"Our system provides means to collect traffic statistics within the
network.  Link delays or packet loss on intermediate links could be
measured for network debugging purposes.  As an example, such information
could help providers of content distribution services to optimize their
(overlay) network."

:class:`NetworkDebuggingApp` deploys statistics collectors along the paths
of the user's traffic and estimates per-segment one-way delay and loss
from the per-device observation records of the user's *own probe packets*
(scope confinement intact: only owned traffic is observed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.components import Component, Capabilities, ComponentContext, Verdict
from repro.core.device import DeviceContext
from repro.core.deployment import DeploymentScope
from repro.core.graph import ComponentGraph
from repro.core.service import TrafficControlService
from repro.net.packet import Packet

__all__ = ["NetworkDebuggingApp", "LinkEstimate", "ProbeObserver"]


class ProbeObserver(Component):
    """Records (packet uid, time) for the owner's packets at one device."""

    capabilities = Capabilities(extra_traffic_bps=2_000.0)

    def __init__(self, name: str = "probe-observer", max_records: int = 100_000) -> None:
        super().__init__(name)
        self.max_records = max_records
        self.observations: dict[int, float] = {}

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        if len(self.observations) < self.max_records:
            self.observations[packet.uid] = ctx.now
        return Verdict.PASS


@dataclass
class LinkEstimate:
    """Measured characteristics of one AS-level segment."""

    from_asn: int
    to_asn: int
    mean_delay: float
    loss_fraction: float
    samples: int


class NetworkDebuggingApp:
    """Per-segment delay/loss estimation from in-network observations."""

    def __init__(self, service: TrafficControlService) -> None:
        self.service = service
        self.observers: dict[int, ProbeObserver] = {}

    def graph_factory(self, device_ctx: DeviceContext) -> ComponentGraph:
        observer = ProbeObserver()
        self.observers[device_ctx.asn] = observer
        graph = ComponentGraph(f"netdebug:{self.service.user.user_id}")
        graph.add(observer)
        return graph

    def deploy(self, scope: Optional[DeploymentScope] = None) -> dict[str, list[int]]:
        scope = scope or DeploymentScope.everywhere()
        # observe both directions of owned traffic
        return self.service.deploy(
            scope,
            src_graph_factory=self.graph_factory_shared,
            dst_graph_factory=self.graph_factory_shared,
        )

    def graph_factory_shared(self, device_ctx: DeviceContext) -> ComponentGraph:
        """Reuse one observer per device across both stages."""
        if device_ctx.asn in self.observers:
            observer = self.observers[device_ctx.asn]
            graph = ComponentGraph(f"netdebug:{self.service.user.user_id}:2")
            graph.add(observer)
            return graph
        return self.graph_factory(device_ctx)

    # --------------------------------------------------------------- analysis
    def estimate_segment(self, from_asn: int, to_asn: int) -> Optional[LinkEstimate]:
        """Delay/loss between two observation points from shared packets."""
        a = self.observers.get(from_asn)
        b = self.observers.get(to_asn)
        if a is None or b is None:
            return None
        sent_uids = set(a.observations)
        if not sent_uids:
            return None
        delays = [b.observations[uid] - a.observations[uid]
                  for uid in sent_uids if uid in b.observations]
        arrived = len(delays)
        loss = 1.0 - arrived / len(sent_uids)
        mean_delay = float(np.mean(delays)) if delays else float("nan")
        return LinkEstimate(from_asn=from_asn, to_asn=to_asn,
                            mean_delay=mean_delay, loss_fraction=loss,
                            samples=arrived)

    def estimate_path(self, path: list[int]) -> list[LinkEstimate]:
        """Segment estimates along an AS path (observation points only)."""
        points = [asn for asn in path if asn in self.observers]
        return [est for a, b in zip(points, points[1:])
                if (est := self.estimate_segment(a, b)) is not None]
