"""Unit and property tests for IPv4 addressing and the prefix trie."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressError
from repro.net import AddressAllocator, IPv4Address, Prefix, PrefixTable
from repro.net.addressing import HostAddressPool, summarize


class TestIPv4Address:
    def test_parse_roundtrip(self):
        for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"):
            assert str(IPv4Address.parse(text)) == text

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.0", "a.b.c.d", "-1.0.0.0"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    def test_out_of_range_value(self):
        with pytest.raises(AddressError):
            IPv4Address(2**32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    @given(v=st.integers(min_value=0, max_value=2**32 - 1))
    def test_int_str_roundtrip(self, v):
        a = IPv4Address(v)
        assert IPv4Address.parse(str(a)).value == v
        assert int(a) == v


class TestPrefix:
    def test_parse_and_str(self):
        p = Prefix.parse("10.1.0.0/16")
        assert str(p) == "10.1.0.0/16"
        assert p.num_addresses == 65536

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            Prefix(IPv4Address.parse("10.1.2.3").value, 16)

    def test_parse_masks_host_bits(self):
        assert str(Prefix.parse("10.1.2.3/16")) == "10.1.0.0/16"

    def test_make_masks(self):
        p = Prefix.make("10.1.2.3", 24)
        assert str(p) == "10.1.2.0/24"

    def test_contains(self):
        p = Prefix.parse("10.1.0.0/16")
        assert p.contains("10.1.255.255")
        assert not p.contains("10.2.0.0")

    def test_zero_length_contains_everything(self):
        p = Prefix.parse("0.0.0.0/0")
        assert p.contains("255.255.255.255")
        assert p.contains("0.0.0.0")

    def test_slash32(self):
        p = Prefix.parse("10.0.0.1/32")
        assert p.contains("10.0.0.1")
        assert not p.contains("10.0.0.2")
        assert p.num_addresses == 1

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_first_last(self):
        p = Prefix.parse("10.1.2.0/24")
        assert str(p.first) == "10.1.2.0"
        assert str(p.last) == "10.1.2.255"

    def test_subnets(self):
        p = Prefix.parse("10.0.0.0/16")
        subs = list(p.subnets(18))
        assert len(subs) == 4
        assert all(p.contains_prefix(s) for s in subs)
        with pytest.raises(AddressError):
            list(p.subnets(8))

    def test_addresses_iteration(self):
        p = Prefix.parse("10.0.0.0/30")
        assert [str(a) for a in p.addresses()] == [
            "10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3",
        ]

    @given(
        v=st.integers(min_value=0, max_value=2**32 - 1),
        length=st.integers(min_value=0, max_value=32),
    )
    def test_make_always_contains_seed_address(self, v, length):
        p = Prefix.make(v, length)
        assert p.contains(v)


class TestPrefixTable:
    def test_longest_prefix_wins(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        t.insert(Prefix.parse("10.1.0.0/16"), "fine")
        t.insert(Prefix.parse("10.1.2.0/24"), "finest")
        assert t.lookup("10.1.2.3") == "finest"
        assert t.lookup("10.1.9.9") == "fine"
        assert t.lookup("10.200.0.1") == "coarse"
        assert t.lookup("11.0.0.1") is None

    def test_default_route(self):
        t = PrefixTable()
        t.insert(Prefix.parse("0.0.0.0/0"), "default")
        assert t.lookup("203.0.113.7") == "default"

    def test_remove(self):
        t = PrefixTable()
        p = Prefix.parse("10.0.0.0/8")
        t.insert(p, 1)
        assert t.remove(p)
        assert not t.remove(p)
        assert t.lookup("10.0.0.1") is None
        assert len(t) == 0

    def test_replace_keeps_size(self):
        t = PrefixTable()
        p = Prefix.parse("10.0.0.0/8")
        t.insert(p, 1)
        t.insert(p, 2)
        assert len(t) == 1
        assert t.lookup_exact(p) == 2

    def test_lookup_exact_no_lpm(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), "coarse")
        assert t.lookup_exact(Prefix.parse("10.1.0.0/16")) is None

    def test_items_roundtrip(self):
        t = PrefixTable()
        prefixes = [Prefix.parse(s) for s in ("10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24")]
        for i, p in enumerate(prefixes):
            t.insert(p, i)
        assert dict(t.items()) == {p: i for i, p in enumerate(prefixes)}

    def test_contains_dunder(self):
        t = PrefixTable()
        t.insert(Prefix.parse("10.0.0.0/8"), "x")
        assert "10.0.0.1" in t
        assert "11.0.0.1" not in t

    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=1, max_value=32),
            ),
            min_size=1, max_size=60,
        ),
        queries=st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=40),
    )
    @settings(max_examples=60)
    def test_matches_bruteforce(self, entries, queries):
        """Trie LPM must agree with brute-force longest-match scan."""
        t = PrefixTable()
        table = {}
        for v, length in entries:
            p = Prefix.make(v, length)
            t.insert(p, str(p))
            table[p] = str(p)
        for q in queries:
            matching = [p for p in table if p.contains(q)]
            expected = max(matching, key=lambda p: p.length, default=None)
            got = t.lookup(q)
            assert got == (table[expected] if expected is not None else None)


class TestAllocator:
    def test_disjoint_prefixes(self):
        alloc = AddressAllocator("10.0.0.0/8")
        prefixes = [alloc.allocate_prefix(24) for _ in range(50)]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.overlaps(b)

    def test_mixed_lengths_align(self):
        alloc = AddressAllocator("10.0.0.0/8")
        a = alloc.allocate_prefix(24)
        b = alloc.allocate_prefix(16)
        c = alloc.allocate_prefix(24)
        assert not a.overlaps(b) and not b.overlaps(c) and not a.overlaps(c)

    def test_exhaustion(self):
        alloc = AddressAllocator("10.0.0.0/30")
        alloc.allocate_prefix(31)
        alloc.allocate_prefix(31)
        with pytest.raises(AddressError):
            alloc.allocate_prefix(31)

    def test_too_large_request(self):
        alloc = AddressAllocator("10.0.0.0/16")
        with pytest.raises(AddressError):
            alloc.allocate_prefix(8)

    def test_host_pool(self):
        pool = HostAddressPool(Prefix.parse("10.0.0.0/29"))
        addrs = [pool.next_address() for _ in range(7)]
        assert len(set(addrs)) == 7
        with pytest.raises(AddressError):
            pool.next_address()


class TestSummarize:
    def test_subsumed_removed(self):
        out = summarize([Prefix.parse("10.0.0.0/8"), Prefix.parse("10.1.0.0/16")])
        assert out == [Prefix.parse("10.0.0.0/8")]

    def test_disjoint_kept(self):
        prefixes = [Prefix.parse("10.0.0.0/16"), Prefix.parse("10.1.0.0/16")]
        assert sorted(summarize(prefixes)) == sorted(prefixes)

    def test_duplicates_deduped(self):
        p = Prefix.parse("10.0.0.0/24")
        assert summarize([p, p]) == [p]
