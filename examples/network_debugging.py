#!/usr/bin/env python3
"""Network debugging: a CDN measures in-network delay and loss
(paper Sec. 4.4, "network debugging and optimisation").

A content provider owns a prefix and wants per-segment delay/loss along
the path to a big customer population — exactly the "link delays or packet
loss on intermediate links could be measured" use case.  The provider
deploys probe observers through the TCS, sends its normal traffic, and
reads back per-segment estimates — including a degraded link it did not
know about.

Run:  python examples/network_debugging.py
"""

from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import NetworkDebuggingApp
from repro.net import Network, Packet, TopologyBuilder
from repro.util.units import ms


def main() -> None:
    network = Network(TopologyBuilder.line(6))
    # secretly degrade one mid-path link (the thing to be discovered)
    bad_link = network.link_between(2, 3)
    bad_link.delay = ms(40)
    bad_link.bandwidth = 3e5
    bad_link.buffer_bytes = 4_000

    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, network)
    tcsp.contract_isp("world-isp", network.topology.as_numbers)
    prefix = network.topology.prefix_of(0)
    authority.record_allocation(prefix, "cdn-co")
    user, cert = tcsp.register_user("cdn-co", [prefix])
    service = TrafficControlService(tcsp, user, cert)
    app = NetworkDebuggingApp(service)
    app.deploy(DeploymentScope.everywhere())

    origin = network.add_host(0)
    customer = network.add_host(5)
    for i in range(300):
        network.sim.schedule_at(i * 0.002, origin.send,
                                Packet.udp(origin.address, customer.address,
                                           size=400))
    network.run()

    print("per-segment estimates along the delivery path (AS0 -> AS5):")
    print(f"{'segment':>10} {'delay':>10} {'loss':>7} {'samples':>8}")
    for est in app.estimate_path(network.path(0, 5)):
        flag = "  <-- degraded!" if est.loss_fraction > 0.05 or est.mean_delay > 0.02 else ""
        print(f"  AS{est.from_asn}->AS{est.to_asn:<4} {est.mean_delay * 1e3:>8.1f}ms "
              f"{est.loss_fraction:>6.1%} {est.samples:>8}{flag}")
    print()
    print("The owner measured its own traffic inside the network without any")
    print("cooperation from individual ISPs beyond the TCS contract.")


if __name__ == "__main__":
    main()
