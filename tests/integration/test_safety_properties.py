"""Property-based tests of the Sec. 4.5 safety guarantees over randomised
service graphs, packets and ownership layouts (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core import (
    AdaptiveDevice,
    ComponentGraph,
    DeviceContext,
    NetworkUser,
    OwnershipRegistry,
)
from repro.core.components import (
    Capabilities,
    Component,
    HeaderFilter,
    HeaderMatch,
    PayloadScrubber,
    PrefixBlacklist,
    RateLimiterComponent,
    Verdict,
)
from repro.net import ASRole, IPv4Address, Packet, Prefix, Protocol

OWNED = Prefix.parse("10.1.0.0/16")
LOCAL = Prefix.parse("10.9.0.0/16")


def make_device(graph: ComponentGraph) -> AdaptiveDevice:
    registry = OwnershipRegistry()
    user = NetworkUser("owner", prefixes=[OWNED])
    registry.register(user)
    device = AdaptiveDevice(
        DeviceContext(asn=9, role=ASRole.STUB, local_prefix=LOCAL),
        registry, strict=True)
    device.install(user, src_graph=graph, dst_graph=graph)
    return device


component_strategy = st.sampled_from([
    lambda i: HeaderFilter(f"hf{i}", HeaderMatch(proto=Protocol.UDP, dport=53)),
    lambda i: HeaderFilter(f"hf{i}", HeaderMatch(min_size=400)),
    lambda i: PrefixBlacklist(f"bl{i}", [Prefix.parse("10.200.0.0/16")]),
    lambda i: RateLimiterComponent(f"rl{i}", rate_bps=1e6),
    lambda i: PayloadScrubber(f"sc{i}"),
])


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    graph = ComponentGraph("prop")
    graph.chain(*[draw(component_strategy)(i) for i in range(n)])
    return graph


@st.composite
def packets(draw):
    owned_src = draw(st.booleans())
    owned_dst = draw(st.booleans())
    src_base = OWNED.base if owned_src else Prefix.parse("172.16.0.0/16").base
    dst_base = OWNED.base if owned_dst else Prefix.parse("172.17.0.0/16").base
    src = IPv4Address(src_base + draw(st.integers(1, 65000)))
    dst = IPv4Address(dst_base + draw(st.integers(1, 65000)))
    proto = draw(st.sampled_from([Protocol.UDP, Protocol.TCP]))
    size = draw(st.integers(min_value=20, max_value=1500))
    dport = draw(st.sampled_from([53, 80, 443]))
    return Packet(src=src, dst=dst, proto=proto, size=size, dport=dport)


class TestConservationProperties:
    @given(graph=graphs(), pkts=st.lists(packets(), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_vetted_graphs_never_violate_conservation(self, graph, pkts):
        """Any chain of stock components keeps every Sec. 4.5 invariant."""
        device = make_device(graph)
        for i, pkt in enumerate(pkts):
            before_src, before_dst = int(pkt.src), int(pkt.dst)
            before_ttl, before_size = pkt.ttl, pkt.size
            out = device.process(pkt, now=i * 0.01, ingress_asn=None)
            if out is not None:
                assert int(out.src) == before_src
                assert int(out.dst) == before_dst
                assert out.ttl == before_ttl
                assert out.size <= before_size
        for instance in device.services.values():
            assert instance.monitor.conserving
            assert not instance.disabled_for_violation

    @given(graph=graphs(), pkts=st.lists(packets(), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_unowned_packets_always_untouched(self, graph, pkts):
        """Scope confinement: foreign packets pass identically."""
        device = make_device(graph)
        for i, pkt in enumerate(pkts):
            if OWNED.contains(pkt.src) or OWNED.contains(pkt.dst):
                continue
            size_before = pkt.size
            assert not device.wants(pkt)
            out = device.process(pkt, now=i * 0.01, ingress_asn=None)
            assert out is pkt
            assert out.size == size_before

    @given(pkts=st.lists(packets(), min_size=5, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_drop_counts_consistent(self, pkts):
        graph = ComponentGraph("g")
        graph.add(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
        device = make_device(graph)
        owned = [p for p in pkts if OWNED.contains(p.src) or OWNED.contains(p.dst)]
        outcomes = [device.process(p, 0.0, None) for p in owned]
        dropped = sum(1 for o in outcomes if o is None)
        assert device.dropped == dropped
        assert device.redirected == len(owned)


class TestVettingIsSound:
    """Vetting rejects exactly the capability declarations that would allow
    a Sec. 4.5 violation."""

    @given(
        forbidden=st.sets(st.sampled_from(["src", "dst", "ttl"]), min_size=0, max_size=3),
        benign=st.sets(st.sampled_from(["dscp", "ecn", "label"]), min_size=0, max_size=3),
        outputs=st.integers(min_value=0, max_value=3),
        size_ratio=st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=120)
    def test_vet_component_decision(self, forbidden, benign, outputs, size_ratio):
        from repro.core import vet_component
        from repro.errors import VettingError

        class Probe(Component):
            capabilities = Capabilities(
                modifies_headers=frozenset(forbidden | benign),
                max_outputs_per_input=outputs,
                max_size_ratio=size_ratio,
            )

            def process(self, packet, ctx):
                return Verdict.PASS

        should_reject = bool(forbidden) or outputs > 1 or size_ratio > 1.0
        try:
            vet_component(Probe("probe"))
            rejected = False
        except VettingError:
            rejected = True
        assert rejected == should_reject
