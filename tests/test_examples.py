"""Every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 6
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example narrates its outcome


def test_quickstart_shows_the_headline_result():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=300,
    )
    out = result.stdout
    assert "undefended reflector attack" in out
    assert "attack traffic at victim : 0 packets" in out
