"""Smoke + shape tests for every experiment module.

Each experiment runs at a tiny scale and its table must (a) be non-empty
with the declared columns and (b) exhibit the paper's qualitative shape.
"""

import pytest

from repro.experiments.common import ExperimentConfig, registry, run_all

CFG = ExperimentConfig(seed=42, scale=0.2)


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = set(registry())
        assert ids == {f"E{i}" for i in range(1, 17)}

    def test_run_all_subset(self):
        results = run_all(CFG, only=["E5"])
        assert set(results) == {"E5"}


class TestE1:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.experiments import e1_reflector_anatomy

        return e1_reflector_anatomy.run(CFG)

    def test_rate_amplification_exceeds_one(self, tables):
        anatomy = tables[0]
        assert all(row[5] > 1 for row in anatomy.rows)

    def test_byte_amp_matches_configured_reply_ratio(self, tables):
        anatomy = tables[0]
        for row in anatomy.rows:
            assert row[6] == pytest.approx(row[2], rel=0.1)

    def test_traceback_depth_is_three(self, tables):
        assert all(row[7] == 3 for row in tables[0].rows)

    def test_worm_curve_monotone(self, tables):
        infected = tables[1].column("infected_hosts")
        assert infected == sorted(infected)
        assert infected[-1] == 75_000


class TestE2:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.experiments import e2_mitigation_matrix

        return e2_mitigation_matrix.run(CFG)[0]

    def _cell(self, table, attack, mitigation):
        for row in table.rows:
            if row[0] == attack and row[1] == mitigation:
                return row
        raise AssertionError(f"missing cell {attack}/{mitigation}")

    def test_matrix_complete(self, table):
        assert len(table) == 27  # 3 attacks x 9 mitigations

    def test_ingress_kills_spoofed_but_not_botnet(self, table):
        assert self._cell(table, "direct-spoofed", "ingress")[2] == 0.0
        assert self._cell(table, "reflector", "ingress")[2] == 0.0
        assert self._cell(table, "direct-unspoofed", "ingress")[2] == 1.0

    def test_tcs_wins_every_class_with_zero_collateral(self, table):
        for attack in ("direct-spoofed", "direct-unspoofed", "reflector"):
            row = self._cell(table, attack, "tcs")
            assert row[2] < 0.5
            assert row[4] == 0.0

    def test_traceback_names_reflectors(self, table):
        row = self._cell(table, "reflector", "traceback-filter")
        assert row[6] > 0  # false identifications (the reflectors)

    def test_overlays_cut_off_nonparticipants(self, table):
        for mitigation in ("sos", "i3"):
            row = self._cell(table, "reflector", mitigation)
            assert row[2] <= 0.05     # victim protected
            assert row[4] >= 0.4      # but half the clients cut off

    def test_lasthop_config_fails_under_attack(self, table):
        row = self._cell(table, "direct-spoofed", "lasthop")
        assert "FAILED" in row[7]


class TestE3:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.experiments import e3_deployment_sweep

        return e3_deployment_sweep.run(CFG)[0]

    def test_monotone_decreasing_in_fraction(self, table):
        for col in ("ingress@random-stubs", "rbf@top-degree"):
            values = table.column(col)
            assert all(a >= b - 0.05 for a, b in zip(values, values[1:]))

    def test_rbf_top_degree_effective_at_20_percent(self, table):
        """The paper's [15] claim: ~20% coverage already highly effective."""
        idx = table.column("fraction").index(0.2)
        assert table.column("rbf@top-degree")[idx] < 0.1
        # while random-stub ingress at 20% is still leaky
        assert table.column("ingress@random-stubs")[idx] > 0.5

    def test_placement_matters(self, table):
        idx = table.column("fraction").index(0.2)
        assert (table.column("rbf@top-degree")[idx]
                < table.column("rbf@random")[idx])

    def test_full_deployment_is_complete(self, table):
        idx = table.column("fraction").index(1.0)
        assert table.column("ingress@random-stubs")[idx] == 0.0
        assert table.column("rbf@top-degree")[idx] == 0.0


class TestE4:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.experiments import e4_tcs_defense

        return e4_tcs_defense.run(CFG)

    def test_attack_decreases_with_deployment(self, tables):
        values = tables[0].column("attack_at_victim_frac")
        assert values[0] == 1.0 and values[-1] == 0.0
        assert all(a >= b - 0.05 for a, b in zip(values, values[1:]))

    def test_byte_hops_track_protection(self, tables):
        attack = tables[0].column("attack_at_victim_frac")
        hops = tables[0].column("byte_hops_frac")
        for a, h in zip(attack, hops):
            assert h == pytest.approx(a, abs=0.08)

    def test_zero_collateral_everywhere(self, tables):
        assert all(c == 0.0 for c in tables[0].column("collateral"))

    def test_drop_distance_zero(self, tables):
        assert all(d < 0.5 for d in tables[0].column("mean_drop_dist_hops"))

    def test_placement_ablation(self, tables):
        rows = {row[0]: row for row in tables[1].rows}
        tcs = rows["tcs@stub-borders (close to source)"]
        edge = rows["victim-edge filter (close to victim)"]
        assert tcs[1] <= 0.05 and edge[1] <= 0.05  # both protect the victim
        assert tcs[2] < 0.1                        # TCS frees the transport
        assert edge[2] > 0.9                       # edge filter does not


class TestE5:
    def test_every_attempt_blocked(self):
        from repro.experiments import e5_safety

        table = e5_safety.run(CFG)[0]
        assert len(table) == 10
        assert all(row[2] is True for row in table.rows)


class TestE6:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.experiments import e6_scalability

        return e6_scalability.run(CFG)

    def test_rules_linear_in_subscribers(self, tables):
        subs = tables[0].column("subscribers")
        rules = tables[0].column("rules_total")
        assert all(r == 2 * s for s, r in zip(subs, rules))

    def test_rules_flat_in_hosts(self, tables):
        assert len(set(tables[1].column("rules_total"))) == 1

    def test_unowned_cheaper_than_owned(self, tables):
        for row in tables[2].rows:
            assert row[2] < row[1]


class TestE7:
    def test_workflows_and_resilience(self):
        from repro.experiments import e7_control_plane

        workflow, resilience, inband = e7_control_plane.run(CFG)
        assert all(row[1] == "ok" for row in workflow.rows)
        # in-band: unflooded control plane works, heavy flood starves it
        answered = inband.column("requests_answered_%")
        assert answered[0] == 100.0
        assert answered[-1] < 50.0
        outcomes = {row[0]: row for row in resilience.rows}
        assert outcomes["TCSP reachable"][1] is True
        assert outcomes["TCSP under DDoS, no NMS fallback"][1] is False
        fallback = outcomes["TCSP under DDoS, direct NMS + peer forwarding"]
        assert fallback[1] is True
        assert fallback[2] == outcomes["TCSP reachable"][2]  # same coverage


class TestE8:
    def test_firewall_restores_survival(self):
        from repro.experiments import e8_protocol_misuse

        table = e8_protocol_misuse.run(CFG)[0]
        for row in table.rows:
            assert row[3] == 1.0        # with firewall: everything survives
            if row[1] >= 20:
                assert row[2] < 0.5     # without: most connections die


class TestE9:
    @pytest.fixture(scope="class")
    def tables(self):
        from repro.experiments import e9_traceback

        return e9_traceback.run(CFG)

    def test_reflector_attacks_identified_wrong(self, tables):
        for row in tables[0].rows:
            if row[0] == "reflector":
                assert row[5] == "wrong source: reflectors"
            else:
                assert row[5] == "true agents found"

    def test_backlog_limits_traceability(self, tables):
        backlog = tables[1]
        # young packets traceable, old ones not (within each window setting)
        by_windows: dict[int, list] = {}
        for age, windows, frac in backlog.rows:
            by_windows.setdefault(windows, []).append((age, frac))
        for windows, series in by_windows.items():
            series.sort()
            assert series[0][1] == 1.0
            assert series[-1][1] == 0.0


class TestE10:
    def test_reaction_reduces_attack_and_keeps_goodput(self):
        from repro.experiments import e10_triggers

        table = e10_triggers.run(CFG)[0]
        baseline = table.rows[0]
        assert baseline[0] == "off"
        for row in table.rows[1:]:
            assert row[1] > 0                      # triggers fired
            assert row[3] < baseline[3]            # attack reduced
            assert row[4] >= baseline[4] - 0.05    # goodput preserved


class TestE11:
    def test_delay_estimates_accurate(self):
        from repro.experiments import e11_debugging

        table = e11_debugging.run(CFG)[0]
        clean = [row for row in table.rows if row[4] == "no"]
        assert all(row[3] < 5.0 for row in clean)  # <5% error
        squeezed = [row for row in table.rows if row[4] == "yes"]
        assert squeezed and squeezed[0][5] > 0.1   # loss detected
