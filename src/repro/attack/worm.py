"""Worm-based agent recruitment.

The paper motivates DDoS with mass worm outbreaks (Slammer, Blaster,
Sasser, MyDoom — Sec. 1 and 2.1: "Attackers can make use of Internet worms
... to build up a huge amplifying network of several ten thousand hosts in
a short time").  We model outbreak dynamics two ways:

* :class:`EpidemicModel` — the classic random-scanning SI epidemic
  (logistic growth, Staniford/Moore analysis of Slammer), solved
  numerically with NumPy;
* :class:`WormOutbreak` — a seeded stochastic realisation that maps newly
  infected hosts onto stub ASes of a concrete topology, yielding the agent
  population available to an attack at any time t.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AttackConfigError
from repro.net.topology import Topology
from repro.util.rng import derive_rng

__all__ = ["EpidemicModel", "PatchedEpidemicModel", "WormOutbreak"]


@dataclass(frozen=True)
class EpidemicModel:
    """Random-scanning worm as an SI epidemic.

    With ``n_vulnerable`` susceptible hosts in an address space of
    ``address_space`` and per-host scan rate ``scan_rate`` (probes/second),
    the infection rate follows the logistic ODE

        dI/dt = beta * I * (N - I),   beta = scan_rate / address_space.

    The closed form is ``I(t) = N / (1 + (N/I0 - 1) exp(-beta N t))``.
    """

    n_vulnerable: int = 75_000          # Slammer's susceptible population
    scan_rate: float = 4000.0           # probes/s/host (Slammer ~4k on 100 Mbit)
    address_space: float = 2.0**32
    initial_infected: int = 1

    def __post_init__(self) -> None:
        if self.n_vulnerable < 1 or self.initial_infected < 1:
            raise AttackConfigError("epidemic needs >= 1 vulnerable and infected host")
        if self.initial_infected > self.n_vulnerable:
            raise AttackConfigError("cannot start with more infected than vulnerable")

    @property
    def beta(self) -> float:
        return self.scan_rate / self.address_space

    def infected_at(self, t: np.ndarray | float) -> np.ndarray | float:
        """Infected host count at time(s) ``t`` (closed-form logistic)."""
        n = float(self.n_vulnerable)
        i0 = float(self.initial_infected)
        g = self.beta * n
        t_arr = np.asarray(t, dtype=np.float64)
        result = n / (1.0 + (n / i0 - 1.0) * np.exp(-g * t_arr))
        return float(result) if np.isscalar(t) else result

    def curve(self, t_max: float, dt: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """(times, infected counts) sampled on a regular grid."""
        times = np.arange(0.0, t_max + dt / 2, dt)
        return times, np.asarray(self.infected_at(times))

    def time_to_fraction(self, fraction: float) -> float:
        """Time until ``fraction`` of the vulnerable population is infected."""
        if not (0.0 < fraction < 1.0):
            raise AttackConfigError("fraction must be in (0, 1)")
        n = float(self.n_vulnerable)
        i0 = float(self.initial_infected)
        target = fraction * n
        # invert the logistic: t = ln((n/i0 - 1) / (n/target - 1)) / (beta n)
        return float(np.log((n / i0 - 1.0) / (n / target - 1.0)) / (self.beta * n))


@dataclass(frozen=True)
class PatchedEpidemicModel:
    """SIR extension: hosts get patched/cleaned at rate ``patch_rate``.

    The paper's Sec. 1 observes that hosts "are patched lazily"; this model
    quantifies what lazy means for the attacker's sustained botnet size.
    With susceptibles S, infected I, recovered R:

        dS/dt = -beta * S * I
        dI/dt =  beta * S * I - gamma * I
        dR/dt =  gamma * I

    Solved by explicit Euler integration (NumPy); for gamma = 0 it matches
    :class:`EpidemicModel` exactly.
    """

    n_vulnerable: int = 75_000
    scan_rate: float = 4000.0
    address_space: float = 2.0**32
    initial_infected: int = 1
    patch_rate: float = 1.0 / 86400.0  # one patch cycle per day

    def __post_init__(self) -> None:
        if self.n_vulnerable < 1 or self.initial_infected < 1:
            raise AttackConfigError("epidemic needs >= 1 vulnerable and infected host")
        if self.patch_rate < 0:
            raise AttackConfigError("patch rate must be >= 0")

    @property
    def beta(self) -> float:
        return self.scan_rate / self.address_space

    def curve(self, t_max: float, dt: float = 1.0
              ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(times, susceptible, infected, recovered) arrays."""
        steps = int(np.ceil(t_max / dt)) + 1
        times = np.arange(steps) * dt
        s = np.empty(steps)
        i = np.empty(steps)
        r = np.empty(steps)
        s[0] = self.n_vulnerable - self.initial_infected
        i[0] = self.initial_infected
        r[0] = 0.0
        for k in range(1, steps):
            infections = self.beta * s[k - 1] * i[k - 1] * dt
            patches = self.patch_rate * i[k - 1] * dt
            infections = min(infections, s[k - 1])
            patches = min(patches, i[k - 1] + infections)
            s[k] = s[k - 1] - infections
            i[k] = i[k - 1] + infections - patches
            r[k] = r[k - 1] + patches
        return times, s, i, r

    def peak_infected(self, t_max: float, dt: float = 1.0) -> tuple[float, float]:
        """(time of peak, infected count at peak)."""
        times, _, infected, _ = self.curve(t_max, dt)
        idx = int(np.argmax(infected))
        return float(times[idx]), float(infected[idx])


class WormOutbreak:
    """A stochastic outbreak realisation over a topology's stub ASes.

    Vulnerable hosts are spread over stub ASes (weighted by a Zipf-ish
    skew: "poorly managed access networks" concentrate compromised
    machines).  ``agent_asns_at(t)`` yields the multiset of ASes hosting
    infected machines at time t — plug it straight into attack scenarios to
    grow the agent population over time.
    """

    def __init__(self, topology: Topology, model: EpidemicModel,
                 n_scaled: Optional[int] = None, skew: float = 1.0,
                 seed: int | None = None) -> None:
        self.topology = topology
        self.model = model
        self.n_scaled = int(n_scaled if n_scaled is not None else min(model.n_vulnerable, 2000))
        rng = derive_rng(seed, "worm")
        stubs = topology.stub_ases
        if not stubs:
            raise AttackConfigError("topology has no stub ASes to infect")
        weights = 1.0 / np.arange(1, len(stubs) + 1, dtype=np.float64) ** skew
        weights /= weights.sum()
        order = rng.permutation(len(stubs))
        shuffled = [stubs[i] for i in order]
        self._host_asn = rng.choice(shuffled, size=self.n_scaled, p=weights)
        # infection order: a random permutation — host j becomes infected
        # once the epidemic curve reaches (j+1)/n_scaled of the population.
        self._infection_rank = rng.permutation(self.n_scaled)

    def infected_count_at(self, t: float) -> int:
        """Scaled infected host count at time ``t``."""
        frac = float(self.model.infected_at(t)) / self.model.n_vulnerable
        return int(round(frac * self.n_scaled))

    def agent_asns_at(self, t: float) -> list[int]:
        """ASes (with multiplicity) of hosts infected by time ``t``."""
        k = self.infected_count_at(t)
        infected = self._infection_rank < k
        return [int(a) for a in self._host_asn[infected]]

    def agents_per_as_at(self, t: float) -> dict[int, int]:
        """Histogram AS -> number of infected hosts at time ``t``."""
        out: dict[int, int] = {}
        for asn in self.agent_asns_at(t):
            out[asn] = out.get(asn, 0) + 1
        return out
