"""Packet model: IP header plus the TCP/UDP/ICMP fields the paper's
components match on ("rules that match traffic by header fields, payload (or
payload hashes), or timing characteristics", Sec. 4.2).

A packet carries *ground truth* that the simulated network never gets to see
— ``true_origin`` (the node that really generated it) and ``spoofed`` — so
experiments can measure how well each mitigation identifies attack sources
(the paper's central argument about reflector attacks hinges on this
distinction).
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.addressing import IPv4Address

__all__ = ["Protocol", "TCPFlags", "ICMPType", "Packet"]

_packet_ids = itertools.count(1)

DEFAULT_TTL = 64
IP_HEADER_BYTES = 20


class Protocol(enum.Enum):
    """IP protocol numbers used in the simulations."""

    ICMP = 1
    TCP = 6
    UDP = 17


class TCPFlags(enum.Flag):
    """TCP flag bits relevant to the attack scenarios."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    RST = enum.auto()
    FIN = enum.auto()

    @property
    def is_syn(self) -> bool:
        return bool(self & TCPFlags.SYN) and not bool(self & TCPFlags.ACK)

    @property
    def is_synack(self) -> bool:
        return bool(self & TCPFlags.SYN) and bool(self & TCPFlags.ACK)


class ICMPType(enum.Enum):
    """ICMP message types named in the paper (Sec. 2.1, 4.3)."""

    ECHO_REQUEST = 8
    ECHO_REPLY = 0
    HOST_UNREACHABLE = 3
    TIME_EXCEEDED = 11


@dataclass
class Packet:
    """A simulated IP packet.

    Header fields (visible to the network and to adaptive devices):

    * ``src``/``dst`` — IPv4 addresses,
    * ``ttl`` — decremented per hop, packet dropped at 0,
    * ``proto`` + ``sport``/``dport``/``flags``/``icmp_type``,
    * ``size`` — total bytes on the wire (headers + payload),
    * ``payload_digest`` — hash of the payload; components may match on it
      and the payload scrubber may delete the payload (size shrinks).

    Ground-truth fields (visible only to the experiment harness):

    * ``true_origin`` — identifier of the node that generated the packet,
    * ``spoofed`` — whether ``src`` was forged,
    * ``kind`` — free-form label ("legit", "attack", "reflected", ...) used
      for goodput/collateral accounting.
    """

    src: IPv4Address
    dst: IPv4Address
    proto: Protocol = Protocol.UDP
    size: int = 512
    ttl: int = DEFAULT_TTL
    sport: int = 0
    dport: int = 0
    flags: TCPFlags = TCPFlags.NONE
    icmp_type: Optional[ICMPType] = None
    payload_digest: bytes = b""
    # --- ground truth (never consulted by network elements) ---
    true_origin: Optional[str] = None
    spoofed: bool = False
    kind: str = "legit"
    flow_id: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    # --- traceback support: probabilistic packet marking writes here ---
    marking: Optional[tuple[str, str, int]] = None
    # --- overlay/i3 indirection: ultimate destination carried end-to-end ---
    overlay_dst: Optional[IPv4Address] = None

    def __post_init__(self) -> None:
        if self.size < IP_HEADER_BYTES:
            self.size = IP_HEADER_BYTES

    @property
    def payload_bytes(self) -> int:
        """Bytes of payload, i.e. size beyond the IP header."""
        return max(0, self.size - IP_HEADER_BYTES)

    def copy(self, **changes) -> "Packet":
        """A copy with a fresh uid (and any field overrides)."""
        changes.setdefault("uid", next(_packet_ids))
        return replace(self, **changes)

    def digest(self) -> bytes:
        """SPIE-style packet digest over the invariant header fields.

        Real SPIE hashes the first invariant 28 bytes of a packet; we hash
        the fields that survive forwarding unchanged (everything except TTL
        and the marking field).
        """
        h = hashlib.blake2b(digest_size=8)
        h.update(int(self.src).to_bytes(4, "big"))
        h.update(int(self.dst).to_bytes(4, "big"))
        h.update(bytes([self.proto.value]))
        h.update(self.sport.to_bytes(2, "big"))
        h.update(self.dport.to_bytes(2, "big"))
        h.update(self.flags.value.to_bytes(2, "big"))
        h.update(self.size.to_bytes(4, "big"))
        h.update(self.uid.to_bytes(8, "big"))
        h.update(self.payload_digest)
        return h.digest()

    @classmethod
    def tcp_syn(cls, src: IPv4Address, dst: IPv4Address, dport: int = 80, **kw) -> "Packet":
        """A minimal TCP SYN (the reflector-attack request of Fig. 1)."""
        kw.setdefault("size", 40)
        return cls(src=src, dst=dst, proto=Protocol.TCP, flags=TCPFlags.SYN, dport=dport, **kw)

    @classmethod
    def tcp_synack(cls, src: IPv4Address, dst: IPv4Address, sport: int = 80, **kw) -> "Packet":
        """The SYN/ACK a reflector returns toward the (spoofed) victim."""
        kw.setdefault("size", 40)
        return cls(
            src=src, dst=dst, proto=Protocol.TCP,
            flags=TCPFlags.SYN | TCPFlags.ACK, sport=sport, **kw,
        )

    @classmethod
    def tcp_rst(cls, src: IPv4Address, dst: IPv4Address, **kw) -> "Packet":
        """A TCP RST (protocol-misuse teardown attack, Sec. 2.1/4.3)."""
        kw.setdefault("size", 40)
        return cls(src=src, dst=dst, proto=Protocol.TCP, flags=TCPFlags.RST, **kw)

    @classmethod
    def icmp(cls, src: IPv4Address, dst: IPv4Address, icmp_type: ICMPType, **kw) -> "Packet":
        """An ICMP message of the given type."""
        kw.setdefault("size", 56)
        return cls(src=src, dst=dst, proto=Protocol.ICMP, icmp_type=icmp_type, **kw)

    @classmethod
    def udp(cls, src: IPv4Address, dst: IPv4Address, dport: int = 53, size: int = 512, **kw) -> "Packet":
        """A UDP datagram (flood / DNS-style traffic)."""
        return cls(src=src, dst=dst, proto=Protocol.UDP, dport=dport, size=size, **kw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" {self.flags.name}" if self.proto is Protocol.TCP else ""
        return (
            f"Packet#{self.uid}({self.proto.name}{extra} {self.src}->{self.dst} "
            f"size={self.size} ttl={self.ttl} kind={self.kind})"
        )
