"""Benchmark regenerating E11: network debugging accuracy (Sec. 4.4)."""

from repro.experiments import e11_debugging

from conftest import run_and_print


def test_e11(benchmark, exp_cfg):
    """E11: network debugging accuracy (Sec. 4.4)"""
    run_and_print(benchmark, e11_debugging.run, exp_cfg)
