"""Shared utilities: deterministic RNG, units, token buckets, Bloom filters,
summary statistics and plain-text result tables."""

from repro.util.rng import derive_rng, spawn_rngs
from repro.util.units import (
    BITS_PER_BYTE,
    Gbps,
    Kbps,
    Mbps,
    bits,
    bytes_to_bits,
    fmt_rate,
    ms,
    seconds,
    us,
)
from repro.util.tokenbucket import TokenBucket
from repro.util.bloom import BloomFilter
from repro.util.stats import OnlineStats, WindowedCounter
from repro.util.tables import Table

__all__ = [
    "derive_rng",
    "spawn_rngs",
    "BITS_PER_BYTE",
    "bits",
    "bytes_to_bits",
    "Kbps",
    "Mbps",
    "Gbps",
    "seconds",
    "ms",
    "us",
    "fmt_rate",
    "TokenBucket",
    "BloomFilter",
    "OnlineStats",
    "WindowedCounter",
    "Table",
]
