"""Stateful and timing-based processing components.

Two advanced components the paper's Sec. 4.2 calls for beyond plain header
matching:

* :class:`StatefulTeardownFilter` — a *connection-aware* teardown filter:
  instead of dropping every RST/ICMP-unreachable (which would break
  legitimate resets), it tracks the owner's observed connections and drops
  only teardown packets that do **not** belong to a live flow the device
  has seen traffic for recently.  This is the precise version of the
  "attacks based on protocol misuse ... can also be filtered out" rule.

* :class:`TimingAnomalyFilter` — matches "timing characteristics"
  (Sec. 4.2): flags/drops sources whose inter-arrival regularity betrays a
  flooding tool (human/bursty traffic has high coefficient of variation;
  CBR attack tools are metronomic).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.components import Capabilities, Component, ComponentContext, Verdict
from repro.net.packet import ICMPType, Packet, Protocol, TCPFlags

__all__ = ["StatefulTeardownFilter", "TimingAnomalyFilter"]


@dataclass
class _FlowState:
    last_seen: float
    packets: int


class StatefulTeardownFilter(Component):
    """Drop RST/ICMP-unreachable packets that match no live connection.

    A flow is identified by (src, dst, sport, dport); a teardown packet is
    legitimate only if the *reverse* direction has carried data within
    ``flow_timeout`` seconds — i.e. the claimed sender really is talking to
    the victim.  Forged teardowns from spoofed peers have a matching flow
    key but no observed forward traffic, so they die here while genuine
    resets pass.
    """

    capabilities = Capabilities(may_drop=True)

    def __init__(self, name: str = "stateful-teardown",
                 flow_timeout: float = 30.0, max_flows: int = 100_000) -> None:
        super().__init__(name)
        self.flow_timeout = flow_timeout
        self.max_flows = max_flows
        self._flows: dict[tuple[int, int, int, int], _FlowState] = {}
        self.forged_dropped = 0
        self.legit_teardowns = 0

    @staticmethod
    def _key(packet: Packet) -> tuple[int, int, int, int]:
        return (int(packet.src), int(packet.dst), packet.sport, packet.dport)

    def _is_teardown(self, packet: Packet) -> bool:
        return (
            (packet.proto is Protocol.TCP and bool(packet.flags & TCPFlags.RST))
            or (packet.proto is Protocol.ICMP
                and packet.icmp_type is ICMPType.HOST_UNREACHABLE)
        )

    def _note_flow(self, packet: Packet, now: float) -> None:
        if len(self._flows) >= self.max_flows:
            self._expire(now)
        key = self._key(packet)
        state = self._flows.get(key)
        if state is None:
            self._flows[key] = _FlowState(last_seen=now, packets=1)
        else:
            state.last_seen = now
            state.packets += 1

    def _expire(self, now: float) -> None:
        cutoff = now - self.flow_timeout
        dead = [k for k, s in self._flows.items() if s.last_seen < cutoff]
        for k in dead:
            del self._flows[k]

    def _has_live_flow(self, packet: Packet, now: float) -> bool:
        key = self._key(packet)
        state = self._flows.get(key)
        return state is not None and now - state.last_seen <= self.flow_timeout

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        if self._is_teardown(packet):
            if self._has_live_flow(packet, ctx.now):
                self.legit_teardowns += 1
                return Verdict.PASS
            self.forged_dropped += 1
            return Verdict.DROP
        self._note_flow(packet, ctx.now)
        return Verdict.PASS


class TimingAnomalyFilter(Component):
    """Drop sources whose inter-arrival timing is tool-like.

    Per source address, keep the last ``window`` inter-arrival gaps; once
    at least ``min_samples`` gaps exist, compute the coefficient of
    variation (stdev/mean).  CBR flooding tools produce CV ~ 0; values
    below ``cv_threshold`` mark the source as a machine-gun sender and its
    packets are dropped until its timing becomes bursty again.
    """

    capabilities = Capabilities(may_drop=True)

    def __init__(self, name: str = "timing-anomaly", cv_threshold: float = 0.1,
                 window: int = 16, min_samples: int = 8,
                 max_sources: int = 50_000) -> None:
        super().__init__(name)
        self.cv_threshold = cv_threshold
        self.window = window
        self.min_samples = min_samples
        self.max_sources = max_sources
        self._last: dict[int, float] = {}
        self._gaps: dict[int, deque[float]] = {}
        self.flagged_sources: set[int] = set()

    def _cv(self, gaps: deque[float]) -> float:
        n = len(gaps)
        mean = sum(gaps) / n
        if mean <= 0:
            return 0.0
        var = sum((g - mean) ** 2 for g in gaps) / n
        return (var ** 0.5) / mean

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        src = int(packet.src)
        if len(self._last) >= self.max_sources and src not in self._last:
            self._last.clear()
            self._gaps.clear()
        last = self._last.get(src)
        self._last[src] = ctx.now
        if last is not None:
            gaps = self._gaps.setdefault(src, deque(maxlen=self.window))
            gaps.append(ctx.now - last)
            if len(gaps) >= self.min_samples:
                if self._cv(gaps) < self.cv_threshold:
                    self.flagged_sources.add(src)
                else:
                    self.flagged_sources.discard(src)
        if src in self.flagged_sources:
            return Verdict.DROP
        return Verdict.PASS
