"""Self-healing behaviour: crashed devices, watchdog detection,
anti-entropy re-install, fail-open/fail-closed policies, and control-plane
failover under injected faults (DESIGN.md: failure model & recovery).
"""


from repro.core import (
    ComponentGraph,
    DeploymentScope,
    NumberAuthority,
    Tcsp,
    TrafficControlService,
)
from repro.core.components import HeaderFilter, HeaderMatch
from repro.net import (
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    Network,
    Packet,
    Protocol,
    TopologyBuilder,
)


def drop_udp_factory(device_ctx):
    g = ComponentGraph("drop-udp")
    g.add(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
    return g


def build_world(n_isps=1, seed=1):
    net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=seed))
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    ases = net.topology.as_numbers
    chunk = max(1, len(ases) // n_isps)
    nmses = []
    for i in range(n_isps):
        part = ases[i * chunk:] if i == n_isps - 1 else ases[i * chunk:(i + 1) * chunk]
        nmses.append(tcsp.contract_isp(f"isp-{i}", part))
    victim_asn = net.topology.stub_ases[0]
    prefix = net.topology.prefix_of(victim_asn)
    authority.record_allocation(prefix, "acme")
    user, cert = tcsp.register_user("acme", [prefix])
    svc = TrafficControlService(tcsp, user, cert, home_nms=nmses[0])
    return net, tcsp, nmses, svc, victim_asn


class TestCrashSemantics:
    def _deployed_device(self, fail_policy="fail-open"):
        net, tcsp, nmses, svc, victim_asn = build_world()
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        device = nmses[0].devices[victim_asn]
        device.fail_policy = fail_policy
        victim = net.add_host(victim_asn)
        attacker = net.add_host(net.topology.stub_ases[1])
        pkt = Packet.udp(attacker.address, victim.address)
        return net, nmses[0], device, pkt

    def test_crashed_fail_open_skips_redirect(self):
        net, nms, device, pkt = self._deployed_device("fail-open")
        assert device.wants(pkt)
        device.crash()
        assert not device.wants(pkt)  # traffic takes the unfiltered path

    def test_crashed_fail_closed_drops_owned_traffic(self):
        net, nms, device, pkt = self._deployed_device("fail-closed")
        device.crash()
        assert device.wants(pkt)  # owned traffic still redirected...
        assert device.process(pkt, 0.0, None) is None  # ...and dropped
        assert device.dropped == 1

    def test_restart_wipes_services(self):
        net, nms, device, pkt = self._deployed_device()
        assert device.services
        device.crash()
        device.restart()
        assert device.services == {}  # Sec. 4.5
        assert not device.crashed
        assert not device.wants(pkt)


class TestWatchdogAntiEntropy:
    def test_reinstalls_after_wiped_restart(self):
        net, tcsp, nmses, svc, victim_asn = build_world()
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        nms = nmses[0]
        nms.start_watchdog(interval=0.1)
        rules_before = nms.rule_count()
        device = nms.devices[victim_asn]
        net.sim.schedule_at(0.3, device.crash)
        net.sim.schedule_at(0.5, device.restart)
        net.run(until=1.0)
        assert nms.devices_seen_down >= 1
        assert nms.reconciliations == 1
        assert nms.services_reinstalled == 1
        assert "acme" in device.services
        assert nms.rule_count() == rules_before

    def test_reconciled_instance_keeps_desired_activation(self):
        net, tcsp, nmses, svc, victim_asn = build_world()
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        svc.set_active(False)
        nms = nmses[0]
        nms.start_watchdog(interval=0.1)
        device = nms.devices[victim_asn]
        net.sim.schedule_at(0.3, device.crash)
        net.sim.schedule_at(0.5, device.restart)
        net.run(until=1.0)
        # the re-installed service honours the user's last set_active
        assert device.services["acme"].active is False

    def test_crash_restart_between_ticks_still_detected(self):
        net, tcsp, nmses, svc, victim_asn = build_world()
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        nms = nmses[0]
        nms.start_watchdog(interval=0.5)
        device = nms.devices[victim_asn]
        # down and back up entirely inside one heartbeat interval
        net.sim.schedule_at(0.6, device.crash)
        net.sim.schedule_at(0.7, device.restart)
        net.run(until=2.0)
        assert nms.services_reinstalled == 1  # restart counter caught it

    def test_filtering_resumes_end_to_end(self):
        net, tcsp, nmses, svc, victim_asn = build_world()
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        nms = nmses[0]
        nms.start_watchdog(interval=0.1)
        device = nms.devices[victim_asn]
        victim = net.add_host(victim_asn)
        attacker = net.add_host(net.topology.stub_ases[1])
        device.crash()
        device.restart()  # wiped; watchdog has not run yet
        net.sim.schedule_at(
            0.5, lambda: attacker.send(Packet.udp(attacker.address,
                                                  victim.address)))
        net.run(until=1.0)
        assert victim.received_packets == 0  # reconciled before the packet


class TestControlPlaneFailover:
    def test_tcsp_outage_fails_over_after_retries(self):
        net, tcsp, nmses, svc, victim_asn = build_world()
        tcsp.reachable = False
        result = svc.deploy(DeploymentScope.stub_borders(),
                            dst_graph_factory=drop_udp_factory)
        assert svc.fallback_used == 1
        assert set(result["isp-0"]) == set(net.topology.stub_ases)
        assert tcsp.channel.stats.exhausted == 1
        assert tcsp.channel.stats.retries == tcsp.channel.policy.attempts - 1

    def test_peer_forwarding_converges_under_message_loss(self):
        """The E7 peer-forwarding path still reaches full coverage when a
        lossy window drops control messages (retries absorb the loss)."""
        net, tcsp, nmses, svc, victim_asn = build_world(n_isps=2)
        plan = FaultPlan([Fault(FaultKind.MESSAGE_LOSS, 0.0, 10.0,
                                param=0.4)])
        injector = FaultInjector(plan, net, tcsp=tcsp, nmses=nmses, seed=1)
        injector.arm()
        net.run(until=0.01)  # activate the loss window
        tcsp.reachable = False
        result = svc.deploy(DeploymentScope.stub_borders(),
                            dst_graph_factory=drop_udp_factory)
        configured = {a for asns in result.values() for a in asns}
        assert configured == set(net.topology.stub_ases)
        assert injector.messages_dropped > 0  # the loss really happened
        retries = sum(n.channel.stats.retries for n in nmses)
        assert retries > 0  # and retries absorbed it

    def test_partitioned_relay_recorded_and_resynced(self):
        net, tcsp, nmses, svc, victim_asn = build_world(n_isps=2)
        svc.deploy(DeploymentScope.stub_borders(),
                   dst_graph_factory=drop_udp_factory)
        nmses[1].partitioned = True
        svc.set_active(False)
        assert tcsp.nms_relay_failures == 1
        assert ("isp-1", "set_active") in tcsp.undelivered
        # isp-0 already deactivated; isp-1 still has the stale state
        stale = [d for d in nmses[1].devices.values()
                 if "acme" in d.services and d.services["acme"].active]
        assert stale
        nmses[1].partitioned = False
        assert tcsp.resync() == 1
        assert all(not d.services["acme"].active
                   for d in nmses[1].devices.values()
                   if "acme" in d.services)
