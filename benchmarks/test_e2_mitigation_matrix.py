"""Benchmark regenerating E2: mitigation x attack effectiveness matrix (Sec. 3, 4.3)."""

from repro.experiments import e2_mitigation_matrix

from conftest import run_and_print


def test_e2(benchmark, exp_cfg):
    """E2: mitigation x attack effectiveness matrix (Sec. 3, 4.3)"""
    run_and_print(benchmark, e2_mitigation_matrix.run, exp_cfg)
