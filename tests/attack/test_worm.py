"""Tests for the worm/epidemic recruitment models."""

import numpy as np
import pytest

from repro.attack import EpidemicModel, WormOutbreak
from repro.errors import AttackConfigError
from repro.net import TopologyBuilder


class TestEpidemicModel:
    def test_monotone_growth(self):
        m = EpidemicModel(n_vulnerable=10_000, scan_rate=4000.0)
        t, i = m.curve(t_max=600.0, dt=10.0)
        assert (np.diff(i) >= -1e-9).all()
        assert i[0] == pytest.approx(m.initial_infected, rel=0.01)

    def test_saturates_at_population(self):
        m = EpidemicModel(n_vulnerable=5_000, scan_rate=10_000.0)
        assert m.infected_at(1e6) == pytest.approx(5_000, rel=1e-6)

    def test_scalar_and_array_inputs(self):
        m = EpidemicModel()
        scalar = m.infected_at(100.0)
        arr = m.infected_at(np.array([100.0]))
        assert scalar == pytest.approx(float(arr[0]))

    def test_time_to_fraction_inverts_curve(self):
        m = EpidemicModel(n_vulnerable=75_000, scan_rate=4000.0)
        t_half = m.time_to_fraction(0.5)
        assert m.infected_at(t_half) == pytest.approx(0.5 * 75_000, rel=1e-6)

    def test_faster_scanning_spreads_faster(self):
        slow = EpidemicModel(scan_rate=1000.0)
        fast = EpidemicModel(scan_rate=8000.0)
        assert fast.time_to_fraction(0.9) < slow.time_to_fraction(0.9)

    def test_invalid_parameters(self):
        with pytest.raises(AttackConfigError):
            EpidemicModel(n_vulnerable=0)
        with pytest.raises(AttackConfigError):
            EpidemicModel(n_vulnerable=5, initial_infected=10)
        with pytest.raises(AttackConfigError):
            EpidemicModel().time_to_fraction(1.5)


class TestWormOutbreak:
    def _outbreak(self, **kw):
        topo = TopologyBuilder.hierarchical(2, 2, 5, seed=1)
        model = EpidemicModel(n_vulnerable=75_000, scan_rate=4000.0)
        kw.setdefault("n_scaled", 200)
        kw.setdefault("seed", 9)
        return topo, WormOutbreak(topo, model, **kw)

    def test_agent_population_grows(self):
        topo, wo = self._outbreak()
        t_late = wo.model.time_to_fraction(0.95)
        early = len(wo.agent_asns_at(0.0))
        late = len(wo.agent_asns_at(t_late))
        assert early <= late
        assert late >= 0.9 * 200

    def test_agents_live_in_stub_ases(self):
        topo, wo = self._outbreak()
        stubs = set(topo.stub_ases)
        t = wo.model.time_to_fraction(0.9)
        assert set(wo.agent_asns_at(t)) <= stubs

    def test_infection_order_stable(self):
        """Hosts infected at t remain infected at t' > t."""
        topo, wo = self._outbreak()
        t1 = wo.model.time_to_fraction(0.3)
        t2 = wo.model.time_to_fraction(0.7)
        set1 = sorted(wo.agent_asns_at(t1))
        set2 = sorted(wo.agent_asns_at(t2))
        # multiset inclusion
        from collections import Counter

        c1, c2 = Counter(set1), Counter(set2)
        assert all(c2[a] >= n for a, n in c1.items())

    def test_histogram_consistent(self):
        topo, wo = self._outbreak()
        t = wo.model.time_to_fraction(0.5)
        hist = wo.agents_per_as_at(t)
        assert sum(hist.values()) == len(wo.agent_asns_at(t))

    def test_deterministic(self):
        topo1, wo1 = self._outbreak(seed=3)
        topo2, wo2 = self._outbreak(seed=3)
        t = 100.0
        assert wo1.agent_asns_at(t) == wo2.agent_asns_at(t)

    def test_skew_concentrates_agents(self):
        topo, heavy = self._outbreak(skew=2.5, seed=1)
        _, flat = self._outbreak(skew=0.0, seed=1)
        t = heavy.model.time_to_fraction(0.95)
        n_heavy = len(set(heavy.agent_asns_at(t)))
        n_flat = len(set(flat.agent_asns_at(t)))
        assert n_heavy <= n_flat
