"""The device flow cache must be invisible except for speed.

Property-style checks that ``wants``/``process`` through the LRU flow
cache always match an uncached reference device, including across
``install``/``uninstall`` and registry ``register``/``unregister``
invalidations, plus unit tests for the counters and LRU bounds.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    AdaptiveDevice,
    ComponentGraph,
    DeviceContext,
    NetworkUser,
    OwnershipRegistry,
)
from repro.core.components import HeaderFilter, HeaderMatch
from repro.net import ASRole, IPv4Address, Packet, Prefix, Protocol

P = Prefix.parse
A = IPv4Address.parse


def make_device(registry=None, n_users=4):
    registry = registry or OwnershipRegistry()
    users = []
    for i in range(n_users):
        user = NetworkUser(f"user-{i}", prefixes=[Prefix((i + 1) << 16, 16)])
        registry.register(user)
        users.append(user)
    device = AdaptiveDevice(
        DeviceContext(asn=1, role=ASRole.STUB,
                      local_prefix=P("192.168.0.0/16")), registry)
    for user in users:
        graph = ComponentGraph(f"svc:{user.user_id}")
        graph.chain(HeaderFilter("drop7", HeaderMatch(proto=Protocol.TCP,
                                                      dport=7)))
        device.install(user, dst_graph=graph)
    return device, users, registry


def reference_wants(device, packet):
    """The uncached redirect decision (original slow path)."""
    src_owner, dst_owner = device.registry.owners_of_packet(packet)
    return any(o is not None and o.user_id in device.services
               for o in (src_owner, dst_owner))


addr_st = st.integers(min_value=0, max_value=(8 << 16) - 1)


class TestCacheTransparency:
    @given(pairs=st.lists(st.tuples(addr_st, addr_st, st.integers(0, 3)),
                          min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_wants_matches_uncached(self, pairs):
        device, _, _ = make_device()
        for src, dst, dport in pairs:
            pkt = Packet.udp(IPv4Address(src), IPv4Address(dst), dport=dport)
            assert device.wants(pkt) == reference_wants(device, pkt)
            # and again, now guaranteed from the cache
            assert device.wants(pkt) == reference_wants(device, pkt)

    def test_repeat_flow_hits_cache(self):
        device, users, _ = make_device()
        pkt = Packet.udp(A("172.16.0.1"),
                         IPv4Address(users[0].prefixes[0].base + 3))
        assert device.wants(pkt)
        hits_before = device.flow_cache_hits
        for _ in range(5):
            assert device.wants(pkt)
        assert device.flow_cache_hits == hits_before + 5
        assert device.flow_cache_misses == 1
        assert 0.0 < device.flow_cache_hit_rate < 1.0

    def test_distinct_dport_is_distinct_flow(self):
        device, users, _ = make_device()
        dst = IPv4Address(users[0].prefixes[0].base + 3)
        device.wants(Packet.udp(A("172.16.0.1"), dst, dport=53))
        device.wants(Packet.udp(A("172.16.0.1"), dst, dport=80))
        assert device.flow_cache_misses == 2


class TestInvalidation:
    def test_uninstall_invalidates(self):
        device, users, _ = make_device()
        pkt = Packet.udp(A("172.16.0.1"),
                         IPv4Address(users[0].prefixes[0].base + 3))
        assert device.wants(pkt)
        device.uninstall(users[0].user_id)
        assert not device.wants(pkt)

    def test_install_invalidates(self):
        device, users, registry = make_device(n_users=2)
        outsider = NetworkUser("late", prefixes=[Prefix(5 << 16, 16)])
        registry.register(outsider)
        pkt = Packet.udp(A("172.16.0.1"), IPv4Address((5 << 16) + 9))
        assert not device.wants(pkt)  # owner registered but no service here
        graph = ComponentGraph("svc:late")
        graph.chain(HeaderFilter("f", HeaderMatch(proto=Protocol.TCP, dport=7)))
        device.install(outsider, dst_graph=graph)
        assert device.wants(pkt)

    def test_set_active_invalidates(self):
        # regression: set_active used to leave stale cache entries behind,
        # so deactivated services kept redirecting (and vice versa)
        device, users, _ = make_device()
        pkt = Packet.udp(A("172.16.0.1"),
                         IPv4Address(users[0].prefixes[0].base + 3))
        assert device.wants(pkt)
        device.set_active(users[0].user_id, False)
        assert not device.wants(pkt)
        device.set_active(users[0].user_id, True)
        assert device.wants(pkt)

    def test_crash_and_restart_invalidate(self):
        device, users, _ = make_device()
        pkt = Packet.udp(A("172.16.0.1"),
                         IPv4Address(users[0].prefixes[0].base + 3))
        assert device.wants(pkt)
        device.crash()
        assert not device.wants(pkt)  # fail-open: no redirect while down
        device.restart()
        assert not device.wants(pkt)  # restart wiped the services

    def test_registry_unregister_invalidates(self):
        device, users, registry = make_device()
        pkt = Packet.udp(A("172.16.0.1"),
                         IPv4Address(users[0].prefixes[0].base + 3))
        assert device.wants(pkt)
        registry.unregister(users[0].user_id)
        assert not device.wants(pkt)

    def test_registry_register_invalidates(self):
        device, _, registry = make_device(n_users=1)
        addr = IPv4Address((3 << 16) + 1)
        pkt = Packet.udp(A("172.16.0.1"), addr)
        assert not device.wants(pkt)
        newcomer = NetworkUser("new", prefixes=[Prefix(3 << 16, 16)])
        registry.register(newcomer)
        graph = ComponentGraph("svc:new")
        graph.chain(HeaderFilter("f", HeaderMatch(proto=Protocol.TCP, dport=7)))
        device.install(newcomer, dst_graph=graph)
        assert device.wants(pkt)

    @given(ops=st.lists(st.sampled_from(["pkt0", "pkt1", "uninstall0",
                                         "reinstall0", "unregister1"]),
                        min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_random_op_interleavings_stay_consistent(self, ops):
        device, users, registry = make_device(n_users=2)
        graphs = {u.user_id: device.services[u.user_id].dst_graph
                  for u in users}
        packets = [
            Packet.udp(A("172.16.0.1"),
                       IPv4Address(u.prefixes[0].base + 3))
            for u in users
        ]
        for op in ops:
            if op == "pkt0" or op == "pkt1":
                pkt = packets[int(op[-1])]
                assert device.wants(pkt) == reference_wants(device, pkt)
            elif op == "uninstall0":
                device.uninstall(users[0].user_id)
            elif op == "reinstall0":
                device.install(users[0], dst_graph=graphs[users[0].user_id])
            elif op == "unregister1":
                if users[1].user_id in {u.user_id for u in registry.users}:
                    registry.unregister(users[1].user_id)
        for pkt in packets:
            assert device.wants(pkt) == reference_wants(device, pkt)


class TestProcessFastPath:
    def test_process_uses_cached_owners(self):
        device, users, _ = make_device()
        pkt = Packet.udp(A("172.16.0.1"),
                         IPv4Address(users[0].prefixes[0].base + 3))
        assert device.wants(pkt)
        out = device.process(pkt, 0.0, None)
        assert out is not None
        assert device.flow_cache_hits >= 1  # process reused the wants entry

    def test_process_drop_still_counted(self):
        device, users, _ = make_device()
        victim = IPv4Address(users[0].prefixes[0].base + 3)
        syn = Packet.tcp_syn(A("172.16.0.1"), victim, dport=7)
        assert device.process(syn, 0.0, None) is None
        assert device.dropped == 1


class TestLRUBounds:
    def test_capacity_enforced(self):
        device, users, _ = make_device()
        device.flow_cache_capacity = 8
        for i in range(50):
            device.wants(Packet.udp(IPv4Address(0xAC100000 + i),
                                    IPv4Address(users[0].prefixes[0].base + 3)))
        assert len(device._flow_cache) <= 8

    def test_lru_evicts_oldest(self):
        device, users, _ = make_device()
        device.flow_cache_capacity = 2
        dst = IPv4Address(users[0].prefixes[0].base + 3)
        a = Packet.udp(IPv4Address(1), dst)
        b = Packet.udp(IPv4Address(2), dst)
        c = Packet.udp(IPv4Address(3), dst)
        device.wants(a)
        device.wants(b)
        device.wants(a)  # refresh a; b is now least-recent
        device.wants(c)  # evicts b
        misses = device.flow_cache_misses
        device.wants(a)
        assert device.flow_cache_misses == misses  # a still cached
        device.wants(b)
        assert device.flow_cache_misses == misses + 1  # b was evicted
