"""Token-bucket rate limiter.

Used by the adaptive-device ``RateLimiter`` component (Sec. 4.2 of the paper:
"traffic rate limiting") and by the pushback baseline.  The bucket is driven
by explicit timestamps so it composes with the discrete-event simulator
instead of wall-clock time.
"""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, capacity ``burst``.

    Tokens are measured in arbitrary units — bytes for byte-rate limiting,
    packets (token cost 1) for packet-rate limiting.

    >>> tb = TokenBucket(rate=100.0, burst=100.0)
    >>> tb.admit(now=0.0, cost=100.0)
    True
    >>> tb.admit(now=0.0, cost=1.0)   # bucket drained
    False
    >>> tb.admit(now=1.0, cost=100.0)  # refilled after 1 s
    True
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "admitted", "rejected")

    def __init__(self, rate: float, burst: float) -> None:
        if rate < 0 or burst <= 0:
            raise ReproError(f"invalid token bucket: rate={rate}, burst={burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0
        self.admitted = 0
        self.rejected = 0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def peek(self, now: float) -> float:
        """Tokens available at time ``now`` without consuming any."""
        self._refill(now)
        return self._tokens

    def admit(self, now: float, cost: float = 1.0) -> bool:
        """Try to consume ``cost`` tokens at time ``now``.

        Returns True (and consumes) if enough tokens are available, else
        False (consuming nothing).  ``now`` may not move backwards; stale
        timestamps are clamped to the latest seen, which keeps the bucket
        well-defined even for simultaneous events popped in arbitrary order.
        """
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def reset(self) -> None:
        """Refill the bucket and zero the counters."""
        self._tokens = self.burst
        self._last = 0.0
        self.admitted = 0
        self.rejected = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenBucket(rate={self.rate}, burst={self.burst}, tokens={self._tokens:.1f})"
