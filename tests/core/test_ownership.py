"""Tests for traffic ownership and the number authority."""

import pytest

from repro.core import NetworkUser, NumberAuthority, OwnershipRegistry
from repro.errors import OwnershipError
from repro.net import IPv4Address, Packet, Prefix

P = Prefix.parse
A = IPv4Address.parse


class TestNetworkUser:
    def test_owns_address(self):
        u = NetworkUser("acme", prefixes=[P("10.1.0.0/16")])
        assert u.owns_address("10.1.2.3")
        assert not u.owns_address("10.2.0.0")

    def test_owns_packet_by_src_or_dst(self):
        u = NetworkUser("acme", prefixes=[P("10.1.0.0/16")])
        inside, outside = A("10.1.0.1"), A("10.9.0.1")
        assert u.owns_packet(Packet.udp(inside, outside))
        assert u.owns_packet(Packet.udp(outside, inside))
        assert not u.owns_packet(Packet.udp(outside, outside))


class TestNumberAuthority:
    def test_record_and_verify(self):
        na = NumberAuthority()
        na.record_allocation(P("10.1.0.0/16"), "acme")
        assert na.verify_ownership("acme", [P("10.1.0.0/16")])
        assert not na.verify_ownership("evil", [P("10.1.0.0/16")])

    def test_covering_allocation_verifies_subprefix(self):
        na = NumberAuthority()
        na.record_allocation(P("10.0.0.0/8"), "acme")
        assert na.verify_ownership("acme", [P("10.5.0.0/16")])

    def test_unallocated_prefix_fails(self):
        na = NumberAuthority()
        assert not na.verify_ownership("acme", [P("10.0.0.0/8")])

    def test_partial_claims_fail(self):
        na = NumberAuthority()
        na.record_allocation(P("10.1.0.0/16"), "acme")
        assert not na.verify_ownership("acme", [P("10.1.0.0/16"), P("10.2.0.0/16")])

    def test_double_allocation_rejected(self):
        na = NumberAuthority()
        na.record_allocation(P("10.1.0.0/16"), "acme")
        with pytest.raises(OwnershipError):
            na.record_allocation(P("10.1.0.0/16"), "evil")
        # idempotent for the same holder
        na.record_allocation(P("10.1.0.0/16"), "acme")

    def test_suballocation_covered_by_larger_block(self):
        """Regression: a holder's larger block vouches for a sub-prefix even
        when that sub-prefix was separately sub-allocated onward — the old
        address-level LPM check saw only the deeper allocation and refused."""
        na = NumberAuthority()
        na.record_allocation(P("10.0.0.0/8"), "acme")
        na.record_allocation(P("10.1.0.0/16"), "globex")
        assert na.verify_ownership("globex", [P("10.1.0.0/16")])
        assert na.verify_ownership("acme", [P("10.1.0.0/16")])
        assert na.verify_ownership("acme", [P("10.2.0.0/16")])
        assert not na.verify_ownership("globex", [P("10.2.0.0/16")])
        assert not na.verify_ownership("evil", [P("10.1.0.0/16")])

    def test_covering_block_must_cover_whole_prefix(self):
        """Holding a piece of a range is not holding the range."""
        na = NumberAuthority()
        na.record_allocation(P("10.0.0.0/16"), "acme")
        assert not na.verify_ownership("acme", [P("10.0.0.0/8")])

    def test_verify_scales_independent_of_allocation_count(self):
        """The covering walk touches only the prefix's trie path, so cost
        is flat in the number of recorded allocations."""
        na = NumberAuthority()
        for i in range(2000):
            na.record_allocation(Prefix((i + 1) << 16, 16), f"holder-{i}")
        import time
        start = time.perf_counter()
        for _ in range(200):
            assert na.verify_ownership("holder-7", [Prefix(8 << 16, 16)])
            assert not na.verify_ownership("holder-7", [Prefix(9 << 16, 16)])
        elapsed = time.perf_counter() - start
        # 400 verifications against 2000 allocations: the old O(n) items()
        # scan took seconds here; the walk takes milliseconds
        assert elapsed < 0.5

    def test_holder_of_and_allocations(self):
        na = NumberAuthority()
        na.record_allocation(P("10.1.0.0/16"), "acme")
        na.record_allocation(P("10.2.0.0/16"), "acme")
        assert na.holder_of(P("10.1.0.0/16")) == "acme"
        assert na.holder_of(P("10.3.0.0/16")) is None
        assert na.allocations_of("acme") == [P("10.1.0.0/16"), P("10.2.0.0/16")]


class TestOwnershipRegistry:
    def test_owner_lookup(self):
        reg = OwnershipRegistry()
        acme = NetworkUser("acme", prefixes=[P("10.1.0.0/16")])
        reg.register(acme)
        assert reg.owner_of("10.1.2.3") is acme
        assert reg.owner_of("10.2.0.0") is None

    def test_owners_of_packet_two_stages(self):
        reg = OwnershipRegistry()
        acme = NetworkUser("acme", prefixes=[P("10.1.0.0/16")])
        globex = NetworkUser("globex", prefixes=[P("10.2.0.0/16")])
        reg.register(acme)
        reg.register(globex)
        pkt = Packet.udp(A("10.1.0.1"), A("10.2.0.1"))
        src_owner, dst_owner = reg.owners_of_packet(pkt)
        assert src_owner is acme and dst_owner is globex

    def test_is_owned(self):
        reg = OwnershipRegistry()
        reg.register(NetworkUser("acme", prefixes=[P("10.1.0.0/16")]))
        assert reg.is_owned(Packet.udp(A("10.1.0.1"), A("10.9.0.1")))
        assert not reg.is_owned(Packet.udp(A("10.8.0.1"), A("10.9.0.1")))

    def test_conflicting_registration_rejected(self):
        reg = OwnershipRegistry()
        reg.register(NetworkUser("acme", prefixes=[P("10.1.0.0/16")]))
        with pytest.raises(OwnershipError):
            reg.register(NetworkUser("evil", prefixes=[P("10.1.0.0/16")]))

    def test_unregister(self):
        reg = OwnershipRegistry()
        reg.register(NetworkUser("acme", prefixes=[P("10.1.0.0/16")]))
        reg.unregister("acme")
        assert reg.owner_of("10.1.0.1") is None
        with pytest.raises(OwnershipError):
            reg.unregister("acme")

    def test_user_accessor(self):
        reg = OwnershipRegistry()
        acme = NetworkUser("acme", prefixes=[P("10.1.0.0/16")])
        reg.register(acme)
        assert reg.user("acme") is acme
        with pytest.raises(OwnershipError):
            reg.user("nobody")
        assert len(reg) == 1
        assert reg.users == [acme]

    def test_longest_prefix_owner_wins(self):
        reg = OwnershipRegistry()
        coarse = NetworkUser("coarse", prefixes=[P("10.0.0.0/8")])
        fine = NetworkUser("fine", prefixes=[P("10.1.0.0/16")])
        reg.register(coarse)
        reg.register(fine)
        assert reg.owner_of("10.1.0.1") is fine
        assert reg.owner_of("10.2.0.1") is coarse
