"""In-band control plane: TCSP and NMS requests as real network packets.

The base control plane (:mod:`repro.core.tcsp`) models Fig. 4/5 as direct
method calls with an explicit ``reachable`` flag.  This module closes the
loop for experiment E7: the TCSP runs on a *host inside the simulated
network*, control requests travel as packets, and a DDoS that saturates
the TCSP's access link (or its CPU) makes requests time out for real —
"an ongoing DDoS attack on the TCSP" (Sec. 5.1) becomes a measurable
packet-level phenomenon rather than a switch.

Only the transport is modelled here; request semantics are delegated to
the wrapped :class:`~repro.core.tcsp.Tcsp` object on delivery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ControlPlaneUnavailable
from repro.core.tcsp import Tcsp
from repro.net.network import Network
from repro.net.node import Host
from repro.net.packet import Packet, Protocol

__all__ = ["ControlRequest", "ControlOutcome", "InbandControlPlane"]

_request_ids = itertools.count(1)

#: size of a control message on the wire (small, like the paper's Fig. 4/5
#: request/confirm exchanges)
CONTROL_PACKET_BYTES = 200


@dataclass
class ControlRequest:
    """One in-flight control-plane request."""

    request_id: int
    operation: str                     # e.g. "register", "deploy"
    payload: tuple = ()
    sent_at: float = 0.0
    completed_at: Optional[float] = None
    result: Any = None
    error: Optional[Exception] = None
    timed_out: bool = False

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.sent_at


@dataclass
class ControlOutcome:
    """Summary of a completed (or failed) request for experiment tables."""

    operation: str
    ok: bool
    latency: Optional[float]
    timed_out: bool
    error: str = ""


class InbandControlPlane:
    """A network user's packet-level channel to the TCSP.

    The TCSP is attached to the network as a host (with an optional CPU
    capacity, so request floods exhaust it).  ``request()`` sends a control
    packet, schedules a timeout, and — on delivery at the TCSP host —
    executes the operation against the wrapped :class:`Tcsp` and returns a
    response packet.  Unanswered requests raise
    :class:`ControlPlaneUnavailable` via the timeout path.
    """

    def __init__(self, network: Network, tcsp: Tcsp, tcsp_asn: int,
                 user_host: Host, timeout: float = 0.5,
                 tcsp_processing_pps: float = 500.0) -> None:
        self.network = network
        self.tcsp = tcsp
        self.user_host = user_host
        self.timeout = timeout
        self.tcsp_host = network.add_host(tcsp_asn,
                                          processing_pps=tcsp_processing_pps)
        self.tcsp_host.add_responder(self._serve)
        self.user_host.add_responder(self._receive_response)
        self._pending: dict[int, ControlRequest] = {}
        self._callbacks: dict[int, Callable[[ControlRequest], None]] = {}
        self.completed: list[ControlRequest] = []

    # ------------------------------------------------------------- client side
    def request(self, operation: str, payload: tuple = (),
                on_done: Optional[Callable[[ControlRequest], None]] = None
                ) -> ControlRequest:
        """Send one control request; completion/timeout is asynchronous."""
        req = ControlRequest(request_id=next(_request_ids),
                             operation=operation, payload=payload,
                             sent_at=self.network.sim.now)
        self._pending[req.request_id] = req
        if on_done is not None:
            self._callbacks[req.request_id] = on_done
        pkt = Packet(src=self.user_host.address, dst=self.tcsp_host.address,
                     proto=Protocol.TCP, size=CONTROL_PACKET_BYTES,
                     dport=4242, sport=req.request_id % 60_000,
                     kind="control-request")
        pkt.payload_digest = str(req.request_id).encode()
        self.user_host.send(pkt)
        self.network.sim.schedule(self.timeout, self._check_timeout,
                                  req.request_id)
        return req

    def _check_timeout(self, request_id: int) -> None:
        req = self._pending.pop(request_id, None)
        if req is None:
            return  # already answered
        req.timed_out = True
        req.error = ControlPlaneUnavailable(
            f"control request {req.operation!r} unanswered after "
            f"{self.timeout:.2f}s (TCSP under attack?)")
        self.completed.append(req)
        self._finish(req)

    def _receive_response(self, packet: Packet, host: Host, now: float):
        if packet.kind != "control-response":
            return None
        request_id = int(packet.payload_digest.decode())
        req = self._pending.pop(request_id, None)
        if req is None:
            return None  # response after timeout: ignored
        req.completed_at = now
        self.completed.append(req)
        self._finish(req)
        return None

    def _finish(self, req: ControlRequest) -> None:
        callback = self._callbacks.pop(req.request_id, None)
        if callback is not None:
            callback(req)

    # ------------------------------------------------------------- server side
    def _serve(self, packet: Packet, host: Host, now: float):
        if packet.kind != "control-request":
            return None
        request_id = int(packet.payload_digest.decode())
        # execute the operation against the wrapped TCSP
        req = self._pending.get(request_id)
        if req is not None:
            try:
                req.result = self._dispatch(req)
            except Exception as exc:  # recorded, still answered
                req.error = exc
        response = Packet(src=host.address, dst=packet.src,
                          proto=Protocol.TCP, size=CONTROL_PACKET_BYTES,
                          sport=4242, kind="control-response")
        response.payload_digest = packet.payload_digest
        return [response]

    def _dispatch(self, req: ControlRequest) -> Any:
        if req.operation == "ping":
            return "pong"
        if req.operation == "register":
            user_id, prefixes = req.payload
            return self.tcsp.register_user(user_id, prefixes)
        if req.operation == "deploy":
            cert, scope, src_factory, dst_factory = req.payload
            return self.tcsp.deploy_service(cert, scope, src_factory,
                                            dst_factory)
        if req.operation == "set-active":
            cert, active = req.payload
            return self.tcsp.set_active(cert, active)
        raise ControlPlaneUnavailable(f"unknown operation {req.operation!r}")

    # -------------------------------------------------------------- statistics
    def outcomes(self) -> list[ControlOutcome]:
        return [
            ControlOutcome(operation=r.operation,
                           ok=r.completed_at is not None and r.error is None,
                           latency=r.latency, timed_out=r.timed_out,
                           error=type(r.error).__name__ if r.error else "")
            for r in self.completed
        ]

    def success_fraction(self) -> float:
        if not self.completed:
            return 0.0
        ok = sum(1 for r in self.completed
                 if r.completed_at is not None and r.error is None)
        return ok / len(self.completed)

    def mean_latency(self) -> Optional[float]:
        latencies = [r.latency for r in self.completed if r.latency is not None]
        return sum(latencies) / len(latencies) if latencies else None
