"""Framework-free ASGI and WSGI middleware over a TrafficController.

Both adapters are plain callables with zero framework dependencies —
ASGI and WSGI are calling conventions, not libraries — so the same
:class:`~repro.service.facade.TrafficController` drops into FastAPI/
Starlette/Django-async (ASGI) or Flask/Django (WSGI) unchanged.

Per request: the client address is read from the transport (``scope
["client"]`` / ``REMOTE_ADDR``), passed to ``controller.allow``, and a
refused request is answered locally — 403 for a pipeline drop (the
owner's installed filters rejected the flow), 429 for an admission-
bucket rejection — without ever reaching the wrapped application.
"""

from __future__ import annotations

from typing import Optional

from repro.service.facade import TrafficController, Verdict

__all__ = ["AsgiTrafficMiddleware", "WsgiTrafficMiddleware",
           "blocked_status"]

_BLOCKED_BODY = b"blocked by traffic control service\n"


def blocked_status(verdict: Verdict) -> int:
    """HTTP status for a refused request: 429 for admission-rate refusal,
    403 for an ownership-pipeline drop."""
    return 429 if verdict.reason == "admission" else 403


class WsgiTrafficMiddleware:
    """WSGI adapter: ``app = WsgiTrafficMiddleware(app, controller)``."""

    def __init__(self, app, controller: TrafficController, *,
                 blocked_body: bytes = _BLOCKED_BODY) -> None:
        self.app = app
        self.controller = controller
        self.blocked_body = blocked_body

    def __call__(self, environ, start_response):
        client = environ.get("REMOTE_ADDR") or "0.0.0.0"
        verdict = self.controller.allow(client)
        if verdict.allowed:
            return self.app(environ, start_response)
        status = blocked_status(verdict)
        phrase = "Too Many Requests" if status == 429 else "Forbidden"
        start_response(f"{status} {phrase}", [
            ("Content-Type", "text/plain"),
            ("Content-Length", str(len(self.blocked_body))),
            ("X-TCS-Verdict", verdict.reason),
        ])
        return [self.blocked_body]


class AsgiTrafficMiddleware:
    """ASGI adapter: ``app = AsgiTrafficMiddleware(app, controller)``.

    Non-HTTP scopes (websocket, lifespan) pass through untouched.
    """

    def __init__(self, app, controller: TrafficController, *,
                 blocked_body: bytes = _BLOCKED_BODY) -> None:
        self.app = app
        self.controller = controller
        self.blocked_body = blocked_body

    async def __call__(self, scope, receive, send):
        if scope.get("type") != "http":
            await self.app(scope, receive, send)
            return
        client: Optional[tuple] = scope.get("client")
        verdict = self.controller.allow(client[0] if client else "0.0.0.0")
        if verdict.allowed:
            await self.app(scope, receive, send)
            return
        await send({
            "type": "http.response.start",
            "status": blocked_status(verdict),
            "headers": [
                (b"content-type", b"text/plain"),
                (b"content-length", str(len(self.blocked_body)).encode()),
                (b"x-tcs-verdict", verdict.reason.encode()),
            ],
        })
        await send({"type": "http.response.body", "body": self.blocked_body})
