"""Tests for traffic generators and direct floods."""

import pytest

from repro.attack import DirectFlood, TrafficGenerator
from repro.attack.flood import spoofed_source_picker
from repro.errors import AttackConfigError
from repro.net import Network, Packet, TopologyBuilder
from repro.util import derive_rng


def small_net():
    net = Network(TopologyBuilder.hierarchical(2, 2, 3, seed=1))
    return net


class TestTrafficGenerator:
    def test_cbr_packet_count(self):
        net = small_net()
        a = net.add_host(net.topology.stub_ases[0])
        b = net.add_host(net.topology.stub_ases[1])
        gen = TrafficGenerator(a, lambda s, t: Packet.udp(a.address, b.address),
                               rate_pps=100.0, duration=0.5)
        gen.install()
        net.run()
        # t = 0, 0.01, ..., ~0.5; the final slot may fall to float accumulation
        assert gen.sent in (50, 51)
        assert b.received_packets == gen.sent

    def test_poisson_rate_approximate(self):
        net = small_net()
        a = net.add_host(net.topology.stub_ases[0])
        b = net.add_host(net.topology.stub_ases[1])
        gen = TrafficGenerator(a, lambda s, t: Packet.udp(a.address, b.address),
                               rate_pps=1000.0, duration=1.0, poisson=True, seed=7)
        gen.install()
        net.run()
        assert 800 <= gen.sent <= 1200

    def test_factory_none_skips(self):
        net = small_net()
        a = net.add_host(net.topology.stub_ases[0])
        b = net.add_host(net.topology.stub_ases[1])
        gen = TrafficGenerator(
            a, lambda s, t: Packet.udp(a.address, b.address) if s < 3 else None,
            rate_pps=100.0, duration=0.2)
        gen.install()
        net.run()
        assert gen.sent == 3

    def test_start_offset(self):
        net = small_net()
        a = net.add_host(net.topology.stub_ases[0])
        b = net.add_host(net.topology.stub_ases[1])
        times = []
        gen = TrafficGenerator(
            a, lambda s, t: times.append(t) or Packet.udp(a.address, b.address),
            rate_pps=10.0, start=0.5, duration=0.3)
        gen.install()
        net.run()
        assert times and min(times) >= 0.5
        assert max(times) <= 0.8 + 1e-9

    def test_invalid_parameters(self):
        net = small_net()
        a = net.add_host(net.topology.stub_ases[0])
        with pytest.raises(AttackConfigError):
            TrafficGenerator(a, lambda s, t: None, rate_pps=0.0)
        with pytest.raises(AttackConfigError):
            TrafficGenerator(a, lambda s, t: None, rate_pps=1.0, duration=0.0)


class TestSpoofedSourcePicker:
    def test_excludes_given_asns(self):
        net = small_net()
        excluded = net.topology.stub_ases[0]
        pick = spoofed_source_picker(net, derive_rng(1), exclude_asns=[excluded])
        for _ in range(100):
            assert net.topology.as_of(pick()) != excluded

    def test_addresses_map_to_real_ases(self):
        net = small_net()
        pick = spoofed_source_picker(net, derive_rng(2))
        for _ in range(50):
            assert net.topology.as_of(pick()) is not None

    def test_no_candidates(self):
        net = small_net()
        with pytest.raises(AttackConfigError):
            spoofed_source_picker(net, derive_rng(1),
                                  exclude_asns=net.topology.as_numbers)


class TestDirectFlood:
    def _scenario(self, spoof):
        net = small_net()
        stubs = net.topology.stub_ases
        victim = net.add_host(stubs[0])
        agents = [net.add_host(a) for a in stubs[1:4]]
        flood = DirectFlood(net, agents, victim, rate_pps=50.0, duration=0.5,
                            spoof=spoof, seed=4)
        return net, victim, agents, flood

    def test_unspoofed_sources_are_agents(self):
        net, victim, agents, flood = self._scenario("none")
        victim.record = True
        flood.launch()
        net.run()
        agent_addrs = {int(a.address) for a in agents}
        srcs = {int(p.src) for _, p in victim.log}
        assert srcs <= agent_addrs
        assert victim.received_by_kind["attack"] > 0

    def test_spoofed_sources_are_not_agents(self):
        net, victim, agents, flood = self._scenario("random")
        victim.record = True
        flood.launch()
        net.run()
        spoofed = [p for _, p in victim.log]
        assert all(p.spoofed for p in spoofed)
        # ground truth retained
        assert all(p.true_origin.startswith("host-") for p in spoofed)

    def test_invalid_spoof_mode(self):
        net, victim, agents, flood = self._scenario("none")
        flood.spoof = "bogus"
        with pytest.raises(AttackConfigError):
            flood.launch()

    def test_as_flows_shape(self):
        net, victim, agents, flood = self._scenario("random")
        flows = flood.as_flows()
        assert len(flows) == len(agents)
        assert all(f.dst_asn == victim.asn for f in flows)
        assert all(f.spoofed for f in flows)
        assert all(f.rate == 50.0 * 512 * 8 for f in flows)

    def test_as_flows_unspoofed(self):
        net, victim, agents, flood = self._scenario("none")
        flows = flood.as_flows()
        assert all(not f.spoofed for f in flows)
