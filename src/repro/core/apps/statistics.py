"""Distributed traffic statistics (paper Secs. 1, 4.4 and 4.6).

"new ways of collecting traffic statistics" / "customers ... that want to
gather distributed traffic statistics for their sites" — the owner deploys
statistics collectors across the network and aggregates them into a
traffic matrix: where does my traffic come from, by which protocol, at
which rates, observed *inside* the network rather than only at the uplink.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.core.components import Capabilities, Component, ComponentContext, Verdict
from repro.core.device import DeviceContext
from repro.core.deployment import DeploymentScope
from repro.core.graph import ComponentGraph
from repro.core.service import TrafficControlService
from repro.net.packet import Packet

__all__ = ["TrafficMatrixCollector", "DistributedStatisticsApp", "TrafficReport"]


class TrafficMatrixCollector(Component):
    """Per-device collector of (source AS x protocol) packet/byte counts."""

    capabilities = Capabilities(extra_traffic_bps=2_000.0)

    def __init__(self, name: str = "traffic-matrix", resolver=None) -> None:
        super().__init__(name)
        #: maps an address value to an AS number (injected at deploy time)
        self.resolver = resolver
        self.packets: Counter[tuple[int, str]] = Counter()  # (src asn, proto)
        self.bytes: Counter[tuple[int, str]] = Counter()
        self.first_seen: Optional[float] = None
        self.last_seen: Optional[float] = None

    def process(self, packet: Packet, ctx: ComponentContext) -> Verdict:
        src_asn = self.resolver(int(packet.src)) if self.resolver else -1
        key = (src_asn if src_asn is not None else -1, packet.proto.name)
        self.packets[key] += 1
        self.bytes[key] += packet.size
        if self.first_seen is None:
            self.first_seen = ctx.now
        self.last_seen = ctx.now
        return Verdict.PASS


@dataclass
class TrafficReport:
    """Aggregated view over all devices."""

    packets_by_src_asn: dict[int, int] = field(default_factory=dict)
    bytes_by_src_asn: dict[int, int] = field(default_factory=dict)
    packets_by_proto: dict[str, int] = field(default_factory=dict)
    observation_points: int = 0
    duration: float = 0.0

    def top_sources(self, n: int = 5) -> list[tuple[int, int]]:
        """(src asn, bytes) of the heaviest sources."""
        return sorted(self.bytes_by_src_asn.items(),
                      key=lambda kv: -kv[1])[:n]

    def rate_bps(self, src_asn: Optional[int] = None) -> float:
        if self.duration <= 0:
            return 0.0
        if src_asn is None:
            total = sum(self.bytes_by_src_asn.values())
        else:
            total = self.bytes_by_src_asn.get(src_asn, 0)
        return total * 8 / self.duration


class DistributedStatisticsApp:
    """Deploy traffic-matrix collectors and aggregate their counters."""

    def __init__(self, service: TrafficControlService) -> None:
        self.service = service
        self.collectors: dict[int, TrafficMatrixCollector] = {}

    def graph_factory(self, device_ctx: DeviceContext) -> ComponentGraph:
        topology = self.service.tcsp.network.topology
        collector = TrafficMatrixCollector(resolver=topology.as_of)
        self.collectors[device_ctx.asn] = collector
        graph = ComponentGraph(f"stats:{self.service.user.user_id}")
        graph.add(collector)
        return graph

    def deploy(self, scope: Optional[DeploymentScope] = None) -> dict[str, list[int]]:
        scope = scope or DeploymentScope.everywhere()
        return self.service.deploy(scope, dst_graph_factory=self.graph_factory)

    # -------------------------------------------------------------- reporting
    def report(self, at_asn: Optional[int] = None) -> TrafficReport:
        """Aggregate (one device's or all devices') counters.

        Note that aggregating over *all* devices counts a packet once per
        observation point; for volume accounting use ``at_asn`` (e.g. the
        owner's own AS) — for path-coverage analyses use the global view.
        """
        report = TrafficReport()
        selected = ([self.collectors[at_asn]] if at_asn is not None
                    else list(self.collectors.values()))
        first, last = None, None
        for collector in selected:
            if collector.first_seen is None:
                continue
            report.observation_points += 1
            first = (collector.first_seen if first is None
                     else min(first, collector.first_seen))
            last = (collector.last_seen if last is None
                    else max(last, collector.last_seen))
            for (asn, proto), count in collector.packets.items():
                report.packets_by_src_asn[asn] = (
                    report.packets_by_src_asn.get(asn, 0) + count)
                report.packets_by_proto[proto] = (
                    report.packets_by_proto.get(proto, 0) + count)
            for (asn, _), count in collector.bytes.items():
                report.bytes_by_src_asn[asn] = (
                    report.bytes_by_src_asn.get(asn, 0) + count)
        if first is not None and last is not None:
            report.duration = max(last - first, 1e-9)
        return report
