"""Tests for the fluid (flow-level) network model."""

from typing import Optional, Sequence

import pytest

from repro.errors import RoutingError
from repro.net import Flow, FlowSet, FluidNetwork, TopologyBuilder


class BlockAtAS:
    """Test filter: pass fraction `keep` for matching flows at one AS."""

    def __init__(self, asn, keep=0.0, kind=None):
        self.asn = asn
        self.keep = keep
        self.kind = kind

    def pass_fraction(self, flow: Flow, asn: int, prev_asn: Optional[int],
                      pos: int, path: Sequence[int]) -> float:
        if asn == self.asn and (self.kind is None or flow.kind == self.kind):
            return self.keep
        return 1.0


class TestPaths:
    def test_path_matches_line(self):
        fn = FluidNetwork(TopologyBuilder.line(4))
        assert fn.path(0, 3) == [0, 1, 2, 3]
        assert fn.path(3, 0) == [3, 2, 1, 0]
        assert fn.path(2, 2) == [2]

    def test_distance(self):
        fn = FluidNetwork(TopologyBuilder.line(5))
        assert fn.distance(0, 4) == 4
        assert fn.distance(4, 4) == 0

    def test_unknown_as(self):
        fn = FluidNetwork(TopologyBuilder.line(3))
        with pytest.raises(Exception):
            fn.path(0, 99)
        with pytest.raises(RoutingError):
            fn.distance(99, 0) if 99 in fn._adj else (_ for _ in ()).throw(RoutingError("x"))

    def test_expected_ingress(self):
        fn = FluidNetwork(TopologyBuilder.line(4))
        assert fn.expected_ingress(2, 0) == frozenset({1})
        assert fn.expected_ingress(2, 3) == frozenset({3})
        assert fn.expected_ingress(2, 99) == frozenset()


class TestEvaluate:
    def test_unfiltered_uncongested_delivers_everything(self):
        fn = FluidNetwork(TopologyBuilder.line(4))
        flows = FlowSet([Flow(0, 3, 1e6), Flow(3, 0, 2e6)])
        r = fn.evaluate(flows)
        assert r.delivered_rate() == pytest.approx(3e6)
        assert r.survival_fraction("legit") == pytest.approx(1.0)

    def test_filter_removes_traffic(self):
        fn = FluidNetwork(TopologyBuilder.line(4))
        flows = FlowSet([Flow(0, 3, 1e6, kind="attack"), Flow(3, 0, 1e6, kind="legit")])
        r = fn.evaluate(flows, filters=[BlockAtAS(1, keep=0.0, kind="attack")])
        assert r.survival_fraction("attack") == 0.0
        assert r.survival_fraction("legit") == 1.0

    def test_partial_filters_compose_multiplicatively(self):
        fn = FluidNetwork(TopologyBuilder.line(4))
        flows = FlowSet([Flow(0, 3, 1e6)])
        r = fn.evaluate(flows, filters=[BlockAtAS(1, keep=0.5), BlockAtAS(2, keep=0.5)])
        assert r.survival_fraction("legit") == pytest.approx(0.25)

    def test_congestion_scales_down(self):
        fn = FluidNetwork(TopologyBuilder.line(3),
                          capacity_fn=lambda a, b: 1e6)
        flows = FlowSet([Flow(0, 2, 4e6)])
        r = fn.evaluate(flows)
        assert r.delivered_rate() == pytest.approx(1e6, rel=0.01)
        assert float(r.congestion_lost.sum()) == pytest.approx(3e6, rel=0.01)

    def test_congestion_shared_proportionally(self):
        fn = FluidNetwork(TopologyBuilder.line(3), capacity_fn=lambda a, b: 1e6)
        flows = FlowSet([Flow(0, 2, 3e6, kind="attack"), Flow(0, 2, 1e6, kind="legit")])
        r = fn.evaluate(flows)
        assert r.delivered_rate("attack") == pytest.approx(0.75e6, rel=0.02)
        assert r.delivered_rate("legit") == pytest.approx(0.25e6, rel=0.02)

    def test_congestion_disabled(self):
        fn = FluidNetwork(TopologyBuilder.line(3), capacity_fn=lambda a, b: 1e6)
        r = fn.evaluate(FlowSet([Flow(0, 2, 4e6)]), congestion=False)
        assert r.delivered_rate() == pytest.approx(4e6)
        assert r.link_load[(0, 1)] == pytest.approx(4e6)

    def test_byte_hops(self):
        fn = FluidNetwork(TopologyBuilder.line(4))
        r = fn.evaluate(FlowSet([Flow(0, 3, 1e6, kind="x")]))
        assert r.byte_hops["x"] == pytest.approx(3e6)  # 3 links at full rate

    def test_byte_hops_shrink_with_early_filtering(self):
        fn = FluidNetwork(TopologyBuilder.line(4))
        late = fn.evaluate(FlowSet([Flow(0, 3, 1e6, kind="x")]),
                           filters=[BlockAtAS(3)])
        early = fn.evaluate(FlowSet([Flow(0, 3, 1e6, kind="x")]),
                            filters=[BlockAtAS(0)])
        assert early.byte_hops["x"] == 0.0
        assert late.byte_hops["x"] == pytest.approx(3e6)

    def test_drop_distance(self):
        fn = FluidNetwork(TopologyBuilder.line(5))
        r = fn.evaluate(FlowSet([Flow(0, 4, 1e6, kind="x")]), filters=[BlockAtAS(2)])
        assert r.drop_distance["x"] == pytest.approx(2.0)

    def test_link_load_accumulates_across_flows(self):
        fn = FluidNetwork(TopologyBuilder.line(3))
        flows = FlowSet([Flow(0, 2, 1e6), Flow(0, 2, 2e6)])
        r = fn.evaluate(flows)
        assert r.link_load[(0, 1)] == pytest.approx(3e6)
        assert r.link_load[(1, 2)] == pytest.approx(3e6)

    def test_local_flow_has_no_links(self):
        fn = FluidNetwork(TopologyBuilder.line(3))
        r = fn.evaluate(FlowSet([Flow(1, 1, 1e6)]))
        assert r.delivered_rate() == pytest.approx(1e6)
        assert r.link_load == {}

    def test_empty_flowset(self):
        fn = FluidNetwork(TopologyBuilder.line(3))
        r = fn.evaluate(FlowSet())
        assert r.delivered_rate() == 0.0
        assert r.survival_fraction("legit") == 0.0


class TestFlowSemantics:
    def test_spoofed_flag(self):
        assert Flow(0, 1, 1.0, claimed_src_asn=2).spoofed
        assert not Flow(0, 1, 1.0).spoofed
        assert not Flow(0, 1, 1.0, claimed_src_asn=0).spoofed

    def test_source_address_asn(self):
        assert Flow(0, 1, 1.0).source_address_asn == 0
        assert Flow(0, 1, 1.0, claimed_src_asn=5).source_address_asn == 5

    def test_flowset_helpers(self):
        fs = FlowSet([Flow(0, 1, 1.0, kind="a"), Flow(0, 1, 2.0, kind="b")])
        fs.add(Flow(0, 1, 4.0, kind="a"))
        assert fs.total_rate() == 7.0
        assert fs.total_rate("a") == 5.0
        assert set(fs.by_kind()) == {"a", "b"}
        assert len(fs) == 3
