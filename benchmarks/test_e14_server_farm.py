"""Benchmark regenerating E14: the server-farm failure mode (Sec. 3.1)."""

from repro.experiments import e14_server_farm

from conftest import run_and_print


def test_e14(benchmark, exp_cfg):
    """E14: server CPU exhausted before the farm link congests (Sec. 3.1)"""
    run_and_print(benchmark, e14_server_farm.run, exp_cfg)
