"""The uniform metric surface shared by every engine.

A :class:`MetricSet` is a frozen record of the standard outputs every
experiment ultimately reports — attack traffic delivered to the victim,
legitimate goodput, collateral damage caused by the defense itself,
transport work wasted by attack traffic, control-plane message counts, and
source-identification accuracy — regardless of whether a packet-level or
fluid run produced them.  ``attack_delivered``/``attack_sent`` keep their
engine-native units (packets vs bits/s); ``attack_survival`` is the
unit-free ratio the engines can be compared on.

:class:`MetricSink` adapts each backend's native results into a
:class:`MetricSet`.  Determinism contract: the same spec + seed yields a
byte-identical MetricSet (equal ``signature()``) whether the run happened
serially, under :func:`~repro.experiments.common.parallel_map`, or in a
separate process pool — pinned by tests/scenario/test_determinism.py.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.attack.scenarios import ScenarioMetrics
from repro.obs.metrics import MetricRegistry, declare

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.fluid import FluidResult
    from repro.scenario.build import BuiltScenario

__all__ = ["MetricSet", "MetricSink", "METRIC_NAMES"]

#: Every standard metric, in report order (ScenarioSpec.metrics selects).
METRIC_NAMES = ("attack_delivered", "attack_sent", "attack_survival",
                "legit_goodput", "collateral", "byte_hops_attack",
                "control_packets", "identified_true", "identified_false")

_SCENARIO_GAUGES = {
    name: declare(f"scenario.{name}", "gauge",
                  labels=("engine", "scenario"),
                  help=f"per-run {name.replace('_', ' ')} (uniform MetricSet)")
    for name in METRIC_NAMES
}


@dataclass(frozen=True)
class MetricSet:
    """Standard outputs of one scenario run on one engine."""

    scenario: str
    engine: str
    seed: int
    attack_delivered: float     # packets (packet engine) / bits-per-s (fluid)
    attack_sent: float
    attack_survival: float      # delivered / sent — unit-free, comparable
    legit_goodput: float
    collateral: float
    byte_hops_attack: float
    control_packets: int = 0
    identified_true: int = 0
    identified_false: int = 0
    notes: str = ""

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def select(self, names: tuple[str, ...]) -> dict:
        """The chosen metric values (all of them for an empty selection)."""
        chosen = names or METRIC_NAMES
        return {name: getattr(self, name) for name in chosen}

    def signature(self) -> str:
        """Stable content hash — equal iff the metric sets are identical."""
        text = json.dumps(dataclasses.asdict(self), sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()

    def publish(self, registry: "MetricRegistry | None" = None) -> "MetricSet":
        """Register every standard value as a ``scenario.*`` gauge in the
        (ambient) :mod:`repro.obs` registry, labelled by engine and
        scenario name — one accounting pipeline for experiment tables and
        exported telemetry.  Returns ``self`` for chaining."""
        for name, decl in _SCENARIO_GAUGES.items():
            gauge = decl.labelled(registry=registry, engine=self.engine,
                                  scenario=self.scenario)
            gauge.set(getattr(self, name))
        return self


class MetricSink:
    """Adapters from engine-native results to the uniform MetricSet."""

    @staticmethod
    def from_packet(built: "BuiltScenario",
                    metrics: ScenarioMetrics) -> MetricSet:
        handle = built.defense
        identified = handle.identified if handle is not None else set()
        agent_asns = built.agent_asns
        sent = metrics.attack_requests_sent
        return MetricSet(
            scenario=built.spec.name,
            engine="packet",
            seed=built.spec.seed,
            attack_delivered=float(metrics.attack_packets_at_victim),
            attack_sent=float(sent),
            attack_survival=(metrics.attack_packets_at_victim / sent
                             if sent else 0.0),
            legit_goodput=metrics.legit_goodput,
            collateral=metrics.collateral_fraction,
            byte_hops_attack=float(metrics.byte_hops_attack),
            control_packets=metrics.control_packets,
            identified_true=len(identified & agent_asns),
            identified_false=len(identified - agent_asns),
            notes=handle.notes if handle is not None else "",
        )

    @staticmethod
    def from_fluid_direct(built: "BuiltScenario",
                          result: "FluidResult") -> MetricSet:
        handle = built.defense
        victim = built.victim_asn
        delivered = result.delivered_rate("attack", dst_asn=victim)
        sent = result.sent_rate("attack")
        legit_sent = result.sent_rate("legit")
        legit_filtered = sum(
            float(result.filtered[i]) for i, f in enumerate(result.flows)
            if f.kind == "legit")
        return MetricSet(
            scenario=built.spec.name,
            engine="fluid",
            seed=built.spec.seed,
            attack_delivered=delivered,
            attack_sent=sent,
            attack_survival=delivered / sent if sent else 0.0,
            legit_goodput=result.survival_fraction("legit"),
            collateral=legit_filtered / legit_sent if legit_sent else 0.0,
            byte_hops_attack=sum(
                v for k, v in result.byte_hops.items()
                if k.startswith("attack")),
            identified_true=0, identified_false=0,
            notes=handle.notes if handle is not None else "",
        )

    @staticmethod
    def from_fluid_reflector(built: "BuiltScenario",
                             request_result: "FluidResult",
                             reflected_result: "FluidResult") -> MetricSet:
        handle = built.defense
        victim = built.victim_asn
        amplification = built.scenario.config.amplification
        delivered = reflected_result.delivered_rate("attack-reflected",
                                                    dst_asn=victim)
        # full amplified rate the reflectors *would* emit undefended —
        # the natural "sent" for a reflector attack's survival ratio
        sent = request_result.sent_rate("attack-request") * amplification
        legit_sent = reflected_result.sent_rate("legit")
        legit_filtered = sum(
            float(reflected_result.filtered[i])
            for i, f in enumerate(reflected_result.flows)
            if f.kind == "legit")
        byte_hops = (
            sum(v for k, v in request_result.byte_hops.items()
                if k.startswith("attack"))
            + sum(v for k, v in reflected_result.byte_hops.items()
                  if k.startswith("attack")))
        return MetricSet(
            scenario=built.spec.name,
            engine="fluid",
            seed=built.spec.seed,
            attack_delivered=delivered,
            attack_sent=sent,
            attack_survival=delivered / sent if sent else 0.0,
            legit_goodput=reflected_result.survival_fraction("legit"),
            collateral=legit_filtered / legit_sent if legit_sent else 0.0,
            byte_hops_attack=byte_hops,
            identified_true=0, identified_false=0,
            notes=handle.notes if handle is not None else "",
        )
