"""Packet generators and direct flooding attacks.

:class:`TrafficGenerator` is the single packet-source abstraction used for
attack agents, legitimate clients and control traffic alike: a CBR or
Poisson process bound to one host, emitting packets from a factory callback.

:class:`DirectFlood` is the classic (non-reflector) DDoS: agents flood the
victim, optionally writing *random spoofed source addresses* ("attack
traffic generally contains spoofed source addresses", Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AttackConfigError
from repro.net.addressing import IPv4Address
from repro.net.fluid import Flow
from repro.net.network import Network
from repro.net.node import Host
from repro.net.packet import Packet
from repro.util.rng import derive_rng

__all__ = ["TrafficGenerator", "DirectFlood", "spoofed_source_picker"]

PacketFactory = Callable[[int, float], Optional[Packet]]


class TrafficGenerator:
    """A rate-controlled packet source attached to one host.

    Parameters
    ----------
    host:
        Sending host.
    factory:
        ``factory(seq, now) -> Packet | None``; returning None skips a slot
        (lets callers stop early or thin the stream).
    rate_pps:
        Packets per second.
    start, duration:
        Active interval in simulation time.
    poisson:
        Exponential inter-arrivals instead of constant bit rate.
    """

    def __init__(self, host: Host, factory: PacketFactory, rate_pps: float,
                 start: float = 0.0, duration: float = 1.0,
                 poisson: bool = False, seed: int | np.random.Generator | None = None) -> None:
        if rate_pps <= 0 or duration <= 0:
            raise AttackConfigError(f"bad generator: rate={rate_pps}, duration={duration}")
        self.host = host
        self.factory = factory
        self.rate_pps = float(rate_pps)
        self.start = float(start)
        self.stop = float(start) + float(duration)
        self.poisson = poisson
        self._rng = derive_rng(seed, "traffic", host.name)
        self.sent = 0

    def install(self) -> None:
        """Schedule the first emission on the host's network simulator."""
        sim = self.host.network.sim
        first = self.start + (self._next_gap() if self.poisson else 0.0)
        if first <= self.stop:
            sim.schedule_at(max(first, sim.now), self._emit)

    def _next_gap(self) -> float:
        if self.poisson:
            return float(self._rng.exponential(1.0 / self.rate_pps))
        return 1.0 / self.rate_pps

    def _emit(self) -> None:
        sim = self.host.network.sim
        now = sim.now
        if now > self.stop:
            return
        packet = self.factory(self.sent, now)
        if packet is not None:
            self.host.send(packet)
            self.sent += 1
        nxt = now + self._next_gap()
        if nxt <= self.stop:
            sim.schedule_at(nxt, self._emit)


def spoofed_source_picker(network: Network, rng: np.random.Generator,
                          exclude_asns: Sequence[int] = ()) -> Callable[[], IPv4Address]:
    """Random spoofed-source generator drawing addresses from real AS prefixes.

    Random addresses are sampled from other ASes' prefixes so that spoofed
    packets look plausible and ingress/route-based filters have well-defined
    semantics (the claimed source maps to a real AS that is *not* the
    sender's).
    """
    candidates = [a for a in network.topology.as_numbers if a not in set(exclude_asns)]
    if not candidates:
        raise AttackConfigError("no ASes available to spoof from")

    def pick() -> IPv4Address:
        asn = candidates[int(rng.integers(0, len(candidates)))]
        prefix = network.topology.prefix_of(asn)
        offset = int(rng.integers(1, prefix.num_addresses))
        return IPv4Address(prefix.base + offset)

    return pick


@dataclass
class DirectFlood:
    """Direct UDP/SYN flood from agents to the victim.

    ``spoof='random'`` draws a fresh spoofed source per packet (classic
    flood), ``spoof='none'`` sends with real agent addresses (botnet-style,
    post-ingress-filtering reality).
    """

    network: Network
    agents: list[Host]
    victim: Host
    rate_pps: float = 100.0
    packet_size: int = 512
    duration: float = 1.0
    start: float = 0.0
    spoof: str = "random"  # "random" | "none"
    seed: int | None = None

    def launch(self) -> list[TrafficGenerator]:
        """Install one generator per agent; returns them for inspection."""
        if self.spoof not in ("random", "none"):
            raise AttackConfigError(f"unknown spoof mode {self.spoof!r}")
        generators = []
        for i, agent in enumerate(self.agents):
            rng = derive_rng(self.seed, "flood", i)
            picker = (
                spoofed_source_picker(self.network, rng, exclude_asns=[agent.asn])
                if self.spoof == "random" else None
            )

            def factory(seq: int, now: float, agent=agent, picker=picker) -> Packet:
                src = picker() if picker else agent.address
                return Packet.udp(
                    src, self.victim.address, size=self.packet_size,
                    kind="attack", true_origin=agent.name,
                    spoofed=picker is not None,
                )

            gen = TrafficGenerator(agent, factory, self.rate_pps,
                                   start=self.start, duration=self.duration,
                                   seed=derive_rng(self.seed, "flood-gen", i))
            gen.install()
            generators.append(gen)
        return generators

    def as_flows(self, rng: np.random.Generator | None = None) -> list[Flow]:
        """Fluid-model equivalent: one flow per agent toward the victim.

        With random spoofing the claimed source AS is sampled once per agent
        (a fluid aggregate of the per-packet randomisation).
        """
        rng = derive_rng(self.seed if rng is None else rng, "flood-fluid")
        rate_bps = self.rate_pps * self.packet_size * 8
        victim_asn = self.victim.asn
        flows = []
        for agent in self.agents:
            if self.spoof == "random":
                others = [a for a in self.network.topology.as_numbers if a != agent.asn]
                claimed = int(others[int(rng.integers(0, len(others)))])
            else:
                claimed = -1
            flows.append(Flow(agent.asn, victim_asn, rate_bps, kind="attack",
                              claimed_src_asn=claimed, tag=agent.name))
        return flows
