#!/usr/bin/env python3
"""Run the micro-benchmarks and record the perf trajectory.

Usage::

    python tools/bench.py                      # run, write BENCH_micro.json
    python tools/bench.py --out /tmp/now.json  # write elsewhere
    python tools/bench.py --compare old.json   # run, then print speedups
    python tools/bench.py --compare old.json --against BENCH_micro.json
                                               # compare two existing files

Executes ``benchmarks/test_micro.py`` under pytest-benchmark, then distils
its verbose JSON into a small, diff-friendly ``BENCH_micro.json`` at the
repo root: median / mean / stddev seconds and rounds per benchmark.  Commit
the file so every PR's perf effect is visible in review, and compare any
two snapshots with ``--compare``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_micro.json"
BENCH_FILE = "benchmarks/test_micro.py"


def run_benchmarks(pytest_args: list[str]) -> dict:
    """Run the micro-benchmark suite, returning pytest-benchmark's JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        cmd = [sys.executable, "-m", "pytest", BENCH_FILE, "--benchmark-only",
               f"--benchmark-json={raw_path}", "-q", *pytest_args]
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"pytest-benchmark failed (exit {proc.returncode})")
        with open(raw_path) as fh:
            return json.load(fh)


def normalize(raw: dict) -> dict:
    """Distil pytest-benchmark output to stable medians per benchmark."""
    benchmarks = {}
    for bench in sorted(raw.get("benchmarks", []), key=lambda b: b["name"]):
        stats = bench["stats"]
        benchmarks[bench["name"]] = {
            "median_s": stats["median"],
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    info = raw.get("machine_info", {})
    return {
        "suite": BENCH_FILE,
        "generated_by": "tools/bench.py",
        "python": info.get("python_version"),
        "benchmarks": benchmarks,
    }


def _medians(snapshot: dict) -> dict:
    """Benchmark name -> stats, accepting normalized or raw pytest JSON."""
    if isinstance(snapshot.get("benchmarks"), list):
        snapshot = normalize(snapshot)
    return snapshot["benchmarks"]


def compare(baseline: dict, current: dict) -> str:
    """Render a speedup table: baseline medians vs current medians."""
    base = _medians(baseline)
    cur = _medians(current)
    lines = [f"{'benchmark':42} {'before':>12} {'after':>12} {'speedup':>8}"]
    for name in sorted(set(base) | set(cur)):
        if name not in base or name not in cur:
            only = "before only" if name in base else "after only"
            lines.append(f"{name:42} {only:>34}")
            continue
        b, c = base[name]["median_s"], cur[name]["median_s"]
        ratio = b / c if c else float("inf")
        lines.append(f"{name:42} {b * 1e6:10.1f}us {c * 1e6:10.1f}us "
                     f"{ratio:7.2f}x")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"normalized output path (default {DEFAULT_OUT})")
    parser.add_argument("--compare", type=Path, metavar="BASELINE",
                        help="print a speedup table against this snapshot")
    parser.add_argument("--against", type=Path, metavar="CURRENT",
                        help="with --compare: use this existing snapshot "
                             "instead of running the suite")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest (prefix "
                             "with -- to separate)")
    args = parser.parse_args(argv)

    if args.compare and args.against:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        with open(args.against) as fh:
            current = json.load(fh)
        print(compare(baseline, current))
        return 0

    normalized = normalize(run_benchmarks(args.pytest_args))
    args.out.write_text(json.dumps(normalized, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({len(normalized['benchmarks'])} benchmarks)")
    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        print(compare(baseline, normalized))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
