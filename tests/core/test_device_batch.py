"""The device's batched redirect path vs the scalar reference.

Property: ``process_batch`` over any permutation of a batch records a
byte-identical registry snapshot and the same per-packet verdicts as the
scalar ``wants``/``process`` loop the router runs — and that equality
holds when the comparison fans out through :func:`parallel_map` or a raw
process pool (the counters are order-invariant by construction: unique
flows are tallied in sorted order).

Parity requires distinct flows <= the device flow-cache capacity (no LRU
evictions); the traffic here stays far under it.
"""

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.experiments.common import parallel_map
from repro.net import PacketBatch, Protocol
from repro.obs import scoped
from repro.scenario.devices import build_device

N_SUBSCRIBERS = 30
N_PACKETS = 200


def _make_batch(perm_seed):
    """Deterministic mixed traffic; ``flow_id`` = original index so drops
    can be mapped back through any permutation."""
    rng = np.random.default_rng(123)
    n = N_PACKETS
    # thirds: owned dst (subscriber /16s), owned src, unowned
    owned_dst = (rng.integers(1, N_SUBSCRIBERS + 1, n) << 16) \
        + rng.integers(1, 2**16, n)
    outside = (172 << 24) + (16 << 16) + rng.integers(1, 2**16, n)
    lane = rng.integers(0, 3, n)
    src = np.where(lane == 1, owned_dst, outside)
    dst = np.where(lane == 0, owned_dst, np.roll(outside, 1))
    proto = np.where(rng.random(n) < 0.5, Protocol.TCP.value,
                     Protocol.UDP.value)
    dport = np.where(rng.random(n) < 0.3, 7, 80)  # dport 7 TCP gets dropped
    batch = PacketBatch(src=src.astype(np.int64), dst=dst.astype(np.int64),
                        proto=proto.astype(np.int64),
                        dport=dport.astype(np.int64),
                        flow_id=np.arange(n, dtype=np.int64))
    if perm_seed is not None:
        perm = np.random.default_rng(perm_seed).permutation(n)
        batch = batch.select(perm)
    return batch


def _batch_outcome(perm_seed):
    """Pool-worker entry point: verdict vector + registry snapshot hash."""
    with scoped() as reg:
        device, _ = build_device(N_SUBSCRIBERS)
        batch = _make_batch(perm_seed)
        passed, dropped = device.process_batch(batch, 0.0, None)
        dropped_ids = set() if dropped is None else {
            int(x) for x in dropped.flow_id}
        n_pass = 0 if passed is None else len(passed)
        assert n_pass + len(dropped_ids) == N_PACKETS
        verdicts = tuple(i not in dropped_ids for i in range(N_PACKETS))
        text = json.dumps(reg.snapshot(), sort_keys=True)
    return verdicts, hashlib.sha256(text.encode()).hexdigest()


def _scalar_outcome(_=None):
    """The router's per-packet reference loop over the unshuffled batch."""
    with scoped() as reg:
        device, _ = build_device(N_SUBSCRIBERS)
        verdicts = []
        for packet in _make_batch(None).to_packets():
            if device.wants(packet):
                verdicts.append(device.process(packet, 0.0, None) is not None)
            else:
                verdicts.append(True)
        text = json.dumps(reg.snapshot(), sort_keys=True)
    return tuple(verdicts), hashlib.sha256(text.encode()).hexdigest()


SEEDS = [None, 1, 2, 3, 4]


class TestBatchMatchesScalar:
    def test_unshuffled_batch_matches_scalar(self):
        assert _batch_outcome(None) == _scalar_outcome()

    def test_traffic_exercises_both_verdicts(self):
        verdicts, _ = _scalar_outcome()
        assert any(verdicts) and not all(verdicts)

    def test_shuffles_are_invariant_serial(self):
        reference = _scalar_outcome()
        for seed in SEEDS:
            assert _batch_outcome(seed) == reference, f"perm seed {seed}"

    def test_parallel_map_matches_serial(self):
        serial = [_batch_outcome(s) for s in SEEDS]
        fanned = parallel_map(_batch_outcome, SEEDS, workers=2)
        assert fanned == serial

    def test_process_pool_matches_serial(self):
        serial = [_batch_outcome(s) for s in SEEDS]
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                pooled = list(pool.map(_batch_outcome, SEEDS))
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.skip(f"process pool unavailable here: {exc}")
        assert pooled == serial


class TestBatchEdgeCases:
    def test_empty_batch_passes_through(self):
        with scoped():
            device, _ = build_device(3)
            empty = PacketBatch(src=np.empty(0, dtype=np.int64),
                                dst=np.empty(0, dtype=np.int64))
            passed, dropped = device.process_batch(empty, 0.0, None)
            assert passed is empty and dropped is None

    def test_unowned_batch_untouched(self):
        with scoped():
            device, _ = build_device(3)
            outside = (172 << 24) + np.arange(5, dtype=np.int64)
            batch = PacketBatch(src=outside, dst=outside + 1000)
            passed, dropped = device.process_batch(batch, 0.0, None)
            assert passed is batch and dropped is None
            assert device.redirected == 0

    def test_crashed_fail_open_passes_all(self):
        with scoped():
            device, _ = build_device(3)
            device.crashed = True
            device.fail_policy = "fail-open"
            batch = _make_batch(None)
            passed, dropped = device.process_batch(batch, 0.0, None)
            assert passed is batch and dropped is None

    def test_crashed_fail_closed_drops_owned_only(self):
        with scoped():
            device, _ = build_device(N_SUBSCRIBERS)
            batch = _make_batch(None)
            scalar_owned = [device.registry.is_owned(p)
                            for p in batch.to_packets()]
            device.crashed = True
            device.fail_policy = "fail-closed"
            passed, dropped = device.process_batch(batch, 0.0, None)
            n_dropped = 0 if dropped is None else len(dropped)
            assert n_dropped == sum(scalar_owned) > 0
            assert (0 if passed is None else len(passed)) \
                == N_PACKETS - n_dropped
