"""The legacy attribute APIs are thin views over the registry.

``link.dropped_packets``, ``device.flow_cache_hits``, ``channel.stats.calls``
and friends predate :mod:`repro.obs`; they must keep reporting exactly what
the registry records (and vice versa) so the experiment tables stay
byte-identical across the refactor.
"""

import pytest

from repro.core import AdaptiveDevice, DeviceContext, NetworkUser, OwnershipRegistry
from repro.core.rpc import ControlChannel
from repro.net import (
    ASRole,
    LinkParams,
    Network,
    Packet,
    Prefix,
    TopologyBuilder,
)
from repro.obs import scoped
from repro.scenario import preset, run_scenario
from repro.util.units import Mbps


def test_link_attributes_mirror_registry_after_a_run():
    with scoped() as reg:
        net = Network(TopologyBuilder.line(2))
        a = net.add_host(0, access=LinkParams(bandwidth=Mbps(1000),
                                              delay=0.0, buffer_bytes=10**6))
        b = net.add_host(1)
        link = net.link_between(0, 1)
        link.buffer_bytes = 1200
        for _ in range(5):
            a.send(Packet.udp(a.address, b.address, size=1000))
        net.run()
        assert link.dropped_packets >= 1
        label = f"{{link={link.src.name}->{link.dst.name}}}"
        snap = reg.snapshot()
        assert snap[f"net.link.tx_packets{label}"] == link.tx_packets
        assert snap[f"net.link.tx_bytes{label}"] == link.tx_bytes
        assert snap[f"net.link.dropped_packets{label}"] == link.dropped_packets
        assert snap[f"net.link.dropped_bytes{label}"] == link.dropped_bytes

        link.reset_stats()
        after = reg.snapshot()
        for field in ("tx_packets", "tx_bytes", "dropped_packets",
                      "dropped_bytes"):
            assert after[f"net.link.{field}{label}"] == 0
            assert getattr(link, field) == 0


def test_device_attributes_mirror_registry_and_reset_together():
    with scoped() as reg:
        registry = OwnershipRegistry()
        registry.register(NetworkUser("acme",
                                      prefixes=[Prefix.parse("10.1.0.0/16")]))
        ctx = DeviceContext(asn=7, role=ASRole.STUB,
                            local_prefix=Prefix.parse("10.7.0.0/16"))
        device = AdaptiveDevice(ctx, registry)
        device.crash()
        device.restart()
        assert device.crashes == 1 and device.restarts == 1
        snap = reg.snapshot()
        assert snap["device.crashes{asn=7}"] == device.crashes
        assert snap["device.restarts{asn=7}"] == device.restarts

        device.reset_stats()
        after = reg.snapshot()
        assert device.crashes == 0 and device.restarts == 0
        assert after["device.crashes{asn=7}"] == 0
        for field in ("redirected", "dropped", "safety_disables",
                      "flow_cache_hits", "flow_cache_misses"):
            assert getattr(device, field) == 0


def test_rpc_stats_mirror_registry():
    with scoped() as reg:
        channel = ControlChannel("tcsp")
        channel.call("ping", lambda: "pong")
        assert channel.stats.calls == 1 and channel.stats.delivered == 1
        snap = reg.snapshot()
        assert snap["rpc.calls{channel=tcsp}"] == 1
        assert snap["rpc.delivered{channel=tcsp}"] == 1

        channel.reset()
        assert channel.stats.calls == 0
        assert reg.snapshot()["rpc.calls{channel=tcsp}"] == 0


def test_scenario_run_publishes_the_metric_set_as_gauges():
    spec = preset("spoofed-flood-ingress").scaled(0.5)
    with scoped() as reg:
        metrics = run_scenario(spec, engine="packet")
        snap = reg.snapshot()
        label = f"{{engine=packet,scenario={spec.name}}}"
        assert snap[f"scenario.attack_survival{label}"] == pytest.approx(
            metrics.attack_survival)
        assert snap[f"scenario.legit_goodput{label}"] == pytest.approx(
            metrics.legit_goodput)
        # the wall-clock run span exists but stays out of the snapshot
        assert not any(key.startswith("scenario.run_seconds")
                       for key in snap)
        assert reg.timings()["scenario.run_seconds{engine=packet}"]["count"] == 1
