"""Experiment harness: one module per claim of the paper (see DESIGN.md
for the experiment index).  Every module exposes ``run(cfg) -> Table`` (or
several tables); the benchmark suite regenerates them, and EXPERIMENTS.md
records paper-claim vs. measured shape.
"""

from repro.experiments.common import ExperimentConfig, run_all

__all__ = ["ExperimentConfig", "run_all"]
