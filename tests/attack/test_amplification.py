"""Unit tests for the amplification metrics module."""


from repro.attack import AmplifyingNetwork, measure_amplification
from repro.net import Network, TopologyBuilder


def setup_world():
    net = Network(TopologyBuilder.star(6))
    stubs = net.topology.stub_ases
    hosts = [net.add_host(stubs[i % len(stubs)]) for i in range(5)]
    attacker, master, agent, reflector, victim = hosts
    structure = AmplifyingNetwork(attacker=attacker, masters=[master],
                                  agents=[agent], reflectors=[reflector],
                                  victim=victim)
    return net, structure, victim


class TestMeasureAmplification:
    def test_counts_attack_kinds_only(self):
        net, structure, victim = setup_world()
        victim.received_by_kind.update({"attack": 10, "attack-reflected": 5,
                                        "legit": 100})
        victim.received_bytes_by_kind.update({"attack": 1000,
                                              "attack-reflected": 500,
                                              "legit": 50_000})
        report = measure_amplification(structure, victim, control_packets=3,
                                       request_bytes_sent=300)
        assert report.attack_packets_at_victim == 15
        assert report.attack_bytes_at_victim == 1500
        assert report.rate_amplification == 5.0
        assert report.byte_amplification == 5.0
        assert report.traceback_depth == 3

    def test_zero_control_packets_infinite_amp(self):
        net, structure, victim = setup_world()
        victim.received_by_kind["attack"] = 7
        report = measure_amplification(structure, victim, control_packets=0,
                                       request_bytes_sent=100)
        assert report.rate_amplification == float("inf")

    def test_zero_request_bytes(self):
        net, structure, victim = setup_world()
        report = measure_amplification(structure, victim, control_packets=1,
                                       request_bytes_sent=0)
        assert report.byte_amplification == 0.0

    def test_as_row_shape(self):
        net, structure, victim = setup_world()
        victim.received_by_kind["attack"] = 4
        victim.received_bytes_by_kind["attack"] = 400
        report = measure_amplification(structure, victim, 2, 100)
        row = report.as_row()
        assert row == (2, 4, 2.0, 4.0, 3)

    def test_depth_without_reflectors(self):
        net, structure, victim = setup_world()
        structure.reflectors = []
        report = measure_amplification(structure, victim, 1, 1)
        assert report.traceback_depth == 2
