"""E2 — the mitigation-effectiveness matrix (paper Sec. 3 + 4.3).

For each attack class {direct-spoofed, direct-unspoofed, reflector} and
each defense {none, ingress, route-based, pushback, traceback+filter, SOS,
i3, last-hop, TCS}, run the packet-level scenario and report:

* attack traffic reaching the victim (relative to the undefended run),
* legitimate goodput,
* collateral damage caused *by the defense itself*,
* identified attack sources: true (real agent ASes) vs false (innocents,
  e.g. reflectors).

The paper's Sec. 3 conclusions appear as the matrix's shape: pushback
misfires under spoofing, traceback names the reflectors, overlays cut off
non-participating clients, ingress only helps where agents' ISPs deploy
it, and the TCS stops the reflector attack with zero collateral.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.attack import AttackScenario, ScenarioConfig
from repro.experiments.common import ExperimentConfig, register
from repro.mitigation import (
    IngressFiltering,
    LastHopFilter,
    I3Defense,
    PPMTraceback,
    Pushback,
    PushbackConfig,
    RouteBasedFiltering,
    SecureOverlay,
    TracebackFilter,
    deployment_sample,
)
from repro.mitigation.traceback import MarkingCollector
from repro.core.apps import TcsAntiSpoofMitigation
from repro.net import Network, Packet, Protocol, TopologyBuilder
from repro.util.tables import Table

__all__ = ["run", "matrix_table", "run_cell", "CellResult"]

ATTACKS = ("direct-spoofed", "direct-unspoofed", "reflector")
MITIGATIONS = ("none", "ingress", "rbf", "pushback", "traceback-filter",
               "sos", "i3", "lasthop", "tcs")


@dataclass
class CellResult:
    attack_kind: str
    mitigation: str
    attack_pkts: int
    legit_goodput: float
    collateral: float
    identified_true: int
    identified_false: int
    notes: str = ""


def _base_scenario(attack_kind: str, cfg: ExperimentConfig,
                   rate: float = 1500.0) -> tuple[Network, AttackScenario]:
    net = Network(TopologyBuilder.hierarchical(2, 2, 8, seed=cfg.seed))
    scenario_cfg = ScenarioConfig(
        attack_kind=attack_kind, n_agents=cfg.scaled(8),
        n_reflectors=cfg.scaled(6), n_legit_clients=4,
        attack_rate_pps=rate, request_size=100, amplification=10.0,
        reflector_mode="dns", duration=0.6, attack_start=0.1,
        seed=cfg.seed + 1,
    )
    return net, AttackScenario(net, scenario_cfg)


def run_cell(attack_kind: str, mitigation: str,
             cfg: ExperimentConfig) -> CellResult:
    """Run one (attack, defense) cell of the matrix."""
    net, sc = _base_scenario(attack_kind, cfg)
    agent_asns = {a.asn for a in sc.agents}
    notes = ""
    identified: set[int] = set()
    legit_wrapper = None
    until = sc.config.attack_start + sc.config.duration + 0.5

    if mitigation == "ingress":
        IngressFiltering().deploy(net, net.topology.stub_ases)
    elif mitigation == "rbf":
        asns = deployment_sample(net.topology, 0.3, seed=cfg.seed)
        RouteBasedFiltering().deploy(net, asns)
        notes = "30% of ASes"
    elif mitigation == "pushback":
        pb = Pushback(PushbackConfig(top_aggregates=3))
        pb.deploy(net, net.topology.as_numbers, until=until)
    elif mitigation == "traceback-filter":
        ppm = PPMTraceback(p=0.1, seed=cfg.seed)
        ppm.deploy(net, net.topology.as_numbers)
        collector = MarkingCollector()
        sc.victim.add_responder(collector.on_packet)

        def react() -> None:
            found = PPMTraceback.identified_source_asns(collector, min_count=2)
            identified.update(found)
            if found:
                TracebackFilter(found).deploy(net, [sc.victim_asn])

        net.sim.schedule_at(sc.config.attack_start + 0.3, react)
        notes = "filter identified sources at victim ISP"
    elif mitigation == "sos":
        stubs = [a for a in net.topology.stub_ases
                 if a != sc.victim_asn and a not in agent_asns]
        sos = SecureOverlay(sc.victim, overlay_asns=stubs[:4], n_soaps=2,
                            n_beacons=1, n_servlets=1)
        sos.deploy(net)
        switched = sc.legit_clients[: len(sc.legit_clients) // 2]
        for client in switched:
            sos.authorize(client)
        switched_set = {id(c) for c in switched}

        def legit_wrapper(client, pkt, sos=sos, switched_set=switched_set):
            if id(client) in switched_set:
                return sos.overlay_packet(client, pkt)
            return pkt

        notes = "half the clients joined the overlay"
    elif mitigation == "i3":
        stubs = [a for a in net.topology.stub_ases
                 if a != sc.victim_asn and a not in agent_asns]
        i3 = I3Defense(sc.victim, i3_asns=stubs[:2])
        i3.deploy(net)
        switched = sc.legit_clients[: len(sc.legit_clients) // 2]
        switched_set = {id(c) for c in switched}

        def legit_wrapper(client, pkt, i3=i3, switched_set=switched_set):
            if id(client) in switched_set:
                return i3.trigger_packet(client, pkt)
            return pkt

        notes = "half the clients use the trigger; victim IP already known"
    elif mitigation == "lasthop":
        lh = LastHopFilter(
            sc.victim,
            lambda p: p.proto is Protocol.UDP and p.dport != 80,
            processing_capacity_pps=800.0,
        )
        lh.deploy(net)

        def attempt(lh=lh):
            ok = lh.try_configure()
            nonlocal_notes["msg"] = ("configured" if ok
                                     else "victim overloaded: config FAILED")

        nonlocal_notes = {"msg": ""}
        net.sim.schedule_at(sc.config.attack_start + 0.2, attempt)
    elif mitigation == "tcs":
        if attack_kind == "direct-unspoofed":
            # sources are genuine: the victim reads them off its own
            # traffic and pushes blacklist rules close to the sources.
            sc.victim.record = True

            def react_tcs() -> None:
                src_asns = {
                    net.topology.as_of(p.src)
                    for _, p in sc.victim.log if p.kind.startswith("attack")
                }
                src_asns.discard(None)
                identified.update(src_asns)
                victim_prefix = net.topology.prefix_of(sc.victim_asn)
                for asn in src_asns:
                    prefix = net.topology.prefix_of(asn)

                    def filt(pkt, router, link, now,
                             prefix=prefix, victim_prefix=victim_prefix):
                        # scope-confined: only the owner's (victim-bound)
                        # traffic from the offending prefix is touched
                        return not (victim_prefix.contains(pkt.dst)
                                    and prefix.contains(pkt.src))

                    net.routers[asn].add_filter("tcs-blacklist", filt)

            net.sim.schedule_at(sc.config.attack_start + 0.2, react_tcs)
            notes = "TCS blacklist near sources (genuine addresses)"
        elif attack_kind == "direct-spoofed":
            # spoofed sources defeat source-based rules, but the victim
            # owns the *destination*: a distributed firewall rule (drop
            # off-service UDP toward the victim) runs in the dst-owner
            # stage at every stub border, killing the flood at the source.
            victim_prefix = net.topology.prefix_of(sc.victim_asn)
            for asn in net.topology.stub_ases:
                def filt(pkt, router, link, now, victim_prefix=victim_prefix):
                    return not (victim_prefix.contains(pkt.dst)
                                and pkt.proto is Protocol.UDP
                                and pkt.dport != 80)

                net.routers[asn].add_filter("tcs-firewall", filt)
            notes = "TCS distributed firewall (dst-owner stage) at stub borders"
        else:
            prefix = net.topology.prefix_of(sc.victim_asn)
            mit = TcsAntiSpoofMitigation([prefix], [sc.victim_asn])
            mit.deploy(net, net.topology.stub_ases)
            notes = "TCS anti-spoofing at all stub borders"
    elif mitigation != "none":
        raise ValueError(f"unknown mitigation {mitigation!r}")

    sc.launch(legit=legit_wrapper is None)
    if legit_wrapper is not None:
        sc.launch_legit(legit_wrapper)
    metrics = sc.run()

    if mitigation == "pushback":
        identified.update(pb.identified_asns())
    if mitigation == "lasthop":
        notes = nonlocal_notes["msg"]

    true_ids = len(identified & agent_asns)
    false_ids = len(identified - agent_asns)
    return CellResult(
        attack_kind=attack_kind, mitigation=mitigation,
        attack_pkts=metrics.attack_packets_at_victim,
        legit_goodput=metrics.legit_goodput,
        collateral=metrics.collateral_fraction,
        identified_true=true_ids, identified_false=false_ids, notes=notes,
    )


def matrix_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E2: mitigation x attack-class effectiveness matrix (Sec. 3 / 4.3)",
        ["attack", "mitigation", "attack_frac", "legit_goodput",
         "collateral", "ids_true", "ids_false", "notes"],
    )
    for attack_kind in ATTACKS:
        baseline = run_cell(attack_kind, "none", cfg)
        base_pkts = max(1, baseline.attack_pkts)
        for mitigation in MITIGATIONS:
            cell = (baseline if mitigation == "none"
                    else run_cell(attack_kind, mitigation, cfg))
            table.add_row(
                attack_kind, mitigation,
                round(cell.attack_pkts / base_pkts, 3),
                round(cell.legit_goodput, 3),
                round(cell.collateral, 3),
                cell.identified_true, cell.identified_false, cell.notes,
            )
    table.add_note("attack_frac = attack packets at victim relative to the "
                   "undefended run of the same attack")
    table.add_note("SOS/i3 'collateral' counts non-participating legit "
                   "clients cut off at the perimeter")
    return table


@register("E2")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [matrix_table(cfg)]
