"""Unidirectional links with bandwidth, propagation delay and a drop-tail
byte queue.

The queue is the *fluid-drain FIFO* model: backlog (in bytes) drains at line
rate; a packet arriving when backlog + size exceeds the buffer is dropped.
This yields exact FIFO departure times without per-byte events — the
standard scalable formulation for event-driven network simulators.

Link drop statistics also feed the pushback baseline ("observing packet drop
statistics in individual routers", Sec. 3.1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.net.packet import Packet
from repro.util.stats import WindowedCounter
from repro.util.units import BITS_PER_BYTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.node import Node
    from repro.net.simulator import Simulator

__all__ = ["Link"]


class Link:
    """One direction of an AS-AS (or host-AS) adjacency.

    Parameters
    ----------
    src, dst:
        Endpoint nodes; delivery calls ``dst.receive(packet, link)``.
    bandwidth:
        Line rate in bits/second.
    delay:
        Propagation delay in seconds.
    buffer_bytes:
        Drop-tail queue size in bytes.
    """

    __slots__ = (
        "src", "dst", "bandwidth", "delay", "buffer_bytes",
        "_backlog", "_last_update",
        "tx_packets", "tx_bytes", "dropped_packets", "dropped_bytes",
        "drop_window", "arrival_window", "drop_log",
    )

    def __init__(self, src: "Node", dst: "Node", bandwidth: float,
                 delay: float, buffer_bytes: int = 64_000,
                 stats_window: float = 1.0) -> None:
        if bandwidth <= 0 or delay < 0 or buffer_bytes <= 0:
            raise SimulationError(
                f"bad link parameters: bw={bandwidth}, delay={delay}, buf={buffer_bytes}"
            )
        self.src = src
        self.dst = dst
        self.bandwidth = float(bandwidth)
        self.delay = float(delay)
        self.buffer_bytes = int(buffer_bytes)
        self._backlog = 0.0
        self._last_update = 0.0
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        # sliding windows for congestion detection (pushback) and stats
        self.drop_window = WindowedCounter(stats_window)
        self.arrival_window = WindowedCounter(stats_window)
        # recent drops as (time, packet) — pushback classifies these
        self.drop_log: list[tuple[float, Packet]] = []

    def _drain(self, now: float) -> None:
        if now > self._last_update:
            self._backlog = max(
                0.0, self._backlog - (now - self._last_update) * self.bandwidth / BITS_PER_BYTE
            )
            self._last_update = now

    @property
    def name(self) -> str:
        return f"{self.src.name}->{self.dst.name}"

    def queue_bytes(self, now: float) -> float:
        """Current backlog in bytes."""
        self._drain(now)
        return self._backlog

    def utilization(self, now: float) -> float:
        """Arrival rate over the stats window divided by capacity (can be > 1)."""
        return (self.arrival_window.rate(now) * BITS_PER_BYTE) / self.bandwidth

    def drop_rate(self, now: float) -> float:
        """Dropped bytes/second over the stats window."""
        return self.drop_window.rate(now)

    def send(self, packet: Packet, sim: "Simulator") -> bool:
        """Enqueue ``packet`` for transmission; returns False on tail drop."""
        now = sim.now
        self._drain(now)
        self.arrival_window.add(now, packet.size)
        if self._backlog + packet.size > self.buffer_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            self.drop_window.add(now, packet.size)
            self.drop_log.append((now, packet))
            if len(self.drop_log) > 10_000:  # bound memory in long floods
                del self.drop_log[:5_000]
            return False
        self._backlog += packet.size
        serialization = self._backlog * BITS_PER_BYTE / self.bandwidth
        self.tx_packets += 1
        self.tx_bytes += packet.size
        sim.schedule(serialization + self.delay, self.dst.receive, packet, self)
        return True

    def reset_stats(self) -> None:
        """Zero all counters (between experiment phases)."""
        self.tx_packets = self.tx_bytes = 0
        self.dropped_packets = self.dropped_bytes = 0
        self.drop_log.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.bandwidth/1e6:.1f} Mbit/s)"
