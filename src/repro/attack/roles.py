"""Roles of the amplifying attack network (paper Fig. 1).

An attacker controls a few *masters*; each master controls many *agents*
(compromised "zombie" hosts); agents either flood the victim directly or
bounce traffic off innocent *reflectors*.  The structure amplifies packet
rate, packet size and traceback difficulty (Sec. 2.2) — properties measured
by :mod:`repro.attack.amplification`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AttackConfigError
from repro.net.node import Host

__all__ = ["AttackRole", "AmplifyingNetwork"]


class AttackRole(enum.Enum):
    """Role of a host in the attack structure."""

    ATTACKER = "attacker"
    MASTER = "master"
    AGENT = "agent"
    REFLECTOR = "reflector"
    VICTIM = "victim"
    LEGIT = "legit"


@dataclass
class AmplifyingNetwork:
    """The control structure: attacker -> masters -> agents (-> reflectors).

    ``control_edges`` records who commands whom, so experiments can count
    control packets and compute the traceback-difficulty depth.
    """

    attacker: Host
    masters: list[Host] = field(default_factory=list)
    agents: list[Host] = field(default_factory=list)
    reflectors: list[Host] = field(default_factory=list)
    victim: Optional[Host] = None
    control_edges: list[tuple[Host, Host]] = field(default_factory=list)

    def assign_agents(self) -> None:
        """Distribute agents round-robin over masters and record the edges."""
        if not self.masters:
            raise AttackConfigError("amplifying network needs at least one master")
        self.control_edges = [(self.attacker, m) for m in self.masters]
        for i, agent in enumerate(self.agents):
            master = self.masters[i % len(self.masters)]
            self.control_edges.append((master, agent))

    def agents_of(self, master: Host) -> list[Host]:
        """Agents commanded by ``master``."""
        return [dst for src, dst in self.control_edges if src is master]

    @property
    def control_depth(self) -> int:
        """Levels of indirection between attacker and the traffic the victim
        sees: attacker->master->agent (2), +1 if reflectors bounce it.

        This is the paper's "difficulty to trace back an attack to the
        initiating attacker" in structural form: each level is one more
        party that must be identified and subpoenaed/queried.
        """
        depth = 0
        if self.masters:
            depth += 1
        if self.agents:
            depth += 1
        if self.reflectors:
            depth += 1
        return depth

    @property
    def size(self) -> int:
        """Number of hosts participating on the attacker's side."""
        return 1 + len(self.masters) + len(self.agents)

    def validate(self) -> None:
        """Sanity-check the structure before launching."""
        if self.agents and not self.masters:
            raise AttackConfigError("agents require at least one master")
        if not self.agents:
            raise AttackConfigError("an attack needs at least one agent")
        seen: set[int] = set()
        for h in [self.attacker, *self.masters, *self.agents]:
            if id(h) in seen:
                raise AttackConfigError(f"host {h.name} has two attack roles")
            seen.add(id(h))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AmplifyingNetwork(masters={len(self.masters)}, agents={len(self.agents)}, "
            f"reflectors={len(self.reflectors)}, depth={self.control_depth})"
        )
