"""Packet model: IP header plus the TCP/UDP/ICMP fields the paper's
components match on ("rules that match traffic by header fields, payload (or
payload hashes), or timing characteristics", Sec. 4.2).

A packet carries *ground truth* that the simulated network never gets to see
— ``true_origin`` (the node that really generated it) and ``spoofed`` — so
experiments can measure how well each mitigation identifies attack sources
(the paper's central argument about reflector attacks hinges on this
distinction).
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.net.addressing import IPv4Address, _as_int

__all__ = ["Protocol", "TCPFlags", "ICMPType", "Packet", "PacketBatch"]

_packet_ids = itertools.count(1)

DEFAULT_TTL = 64
IP_HEADER_BYTES = 20


class Protocol(enum.Enum):
    """IP protocol numbers used in the simulations."""

    ICMP = 1
    TCP = 6
    UDP = 17


class TCPFlags(enum.Flag):
    """TCP flag bits relevant to the attack scenarios."""

    NONE = 0
    SYN = enum.auto()
    ACK = enum.auto()
    RST = enum.auto()
    FIN = enum.auto()

    @property
    def is_syn(self) -> bool:
        return bool(self & TCPFlags.SYN) and not bool(self & TCPFlags.ACK)

    @property
    def is_synack(self) -> bool:
        return bool(self & TCPFlags.SYN) and bool(self & TCPFlags.ACK)


class ICMPType(enum.Enum):
    """ICMP message types named in the paper (Sec. 2.1, 4.3)."""

    ECHO_REQUEST = 8
    ECHO_REPLY = 0
    HOST_UNREACHABLE = 3
    TIME_EXCEEDED = 11


@dataclass
class Packet:
    """A simulated IP packet.

    Header fields (visible to the network and to adaptive devices):

    * ``src``/``dst`` — IPv4 addresses,
    * ``ttl`` — decremented per hop, packet dropped at 0,
    * ``proto`` + ``sport``/``dport``/``flags``/``icmp_type``,
    * ``size`` — total bytes on the wire (headers + payload),
    * ``payload_digest`` — hash of the payload; components may match on it
      and the payload scrubber may delete the payload (size shrinks).

    Ground-truth fields (visible only to the experiment harness):

    * ``true_origin`` — identifier of the node that generated the packet,
    * ``spoofed`` — whether ``src`` was forged,
    * ``kind`` — free-form label ("legit", "attack", "reflected", ...) used
      for goodput/collateral accounting.
    """

    src: IPv4Address
    dst: IPv4Address
    proto: Protocol = Protocol.UDP
    size: int = 512
    ttl: int = DEFAULT_TTL
    sport: int = 0
    dport: int = 0
    flags: TCPFlags = TCPFlags.NONE
    icmp_type: Optional[ICMPType] = None
    payload_digest: bytes = b""
    # --- ground truth (never consulted by network elements) ---
    true_origin: Optional[str] = None
    spoofed: bool = False
    kind: str = "legit"
    flow_id: int = 0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    created_at: float = 0.0
    # --- traceback support: probabilistic packet marking writes here ---
    marking: Optional[tuple[str, str, int]] = None
    # --- overlay/i3 indirection: ultimate destination carried end-to-end ---
    overlay_dst: Optional[IPv4Address] = None

    def __post_init__(self) -> None:
        if self.size < IP_HEADER_BYTES:
            self.size = IP_HEADER_BYTES

    @property
    def payload_bytes(self) -> int:
        """Bytes of payload, i.e. size beyond the IP header."""
        return max(0, self.size - IP_HEADER_BYTES)

    def copy(self, **changes) -> "Packet":
        """A copy with a fresh uid (and any field overrides)."""
        changes.setdefault("uid", next(_packet_ids))
        return replace(self, **changes)

    def digest(self) -> bytes:
        """SPIE-style packet digest over the invariant header fields.

        Real SPIE hashes the first invariant 28 bytes of a packet; we hash
        the fields that survive forwarding unchanged (everything except TTL
        and the marking field).
        """
        h = hashlib.blake2b(digest_size=8)
        h.update(int(self.src).to_bytes(4, "big"))
        h.update(int(self.dst).to_bytes(4, "big"))
        h.update(bytes([self.proto.value]))
        h.update(self.sport.to_bytes(2, "big"))
        h.update(self.dport.to_bytes(2, "big"))
        h.update(self.flags.value.to_bytes(2, "big"))
        h.update(self.size.to_bytes(4, "big"))
        h.update(self.uid.to_bytes(8, "big"))
        h.update(self.payload_digest)
        return h.digest()

    @classmethod
    def tcp_syn(cls, src: IPv4Address, dst: IPv4Address, dport: int = 80, **kw) -> "Packet":
        """A minimal TCP SYN (the reflector-attack request of Fig. 1)."""
        kw.setdefault("size", 40)
        return cls(src=src, dst=dst, proto=Protocol.TCP, flags=TCPFlags.SYN, dport=dport, **kw)

    @classmethod
    def tcp_synack(cls, src: IPv4Address, dst: IPv4Address, sport: int = 80, **kw) -> "Packet":
        """The SYN/ACK a reflector returns toward the (spoofed) victim."""
        kw.setdefault("size", 40)
        return cls(
            src=src, dst=dst, proto=Protocol.TCP,
            flags=TCPFlags.SYN | TCPFlags.ACK, sport=sport, **kw,
        )

    @classmethod
    def tcp_rst(cls, src: IPv4Address, dst: IPv4Address, **kw) -> "Packet":
        """A TCP RST (protocol-misuse teardown attack, Sec. 2.1/4.3)."""
        kw.setdefault("size", 40)
        return cls(src=src, dst=dst, proto=Protocol.TCP, flags=TCPFlags.RST, **kw)

    @classmethod
    def icmp(cls, src: IPv4Address, dst: IPv4Address, icmp_type: ICMPType, **kw) -> "Packet":
        """An ICMP message of the given type."""
        kw.setdefault("size", 56)
        return cls(src=src, dst=dst, proto=Protocol.ICMP, icmp_type=icmp_type, **kw)

    @classmethod
    def udp(cls, src: IPv4Address, dst: IPv4Address, dport: int = 53, size: int = 512, **kw) -> "Packet":
        """A UDP datagram (flood / DNS-style traffic)."""
        return cls(src=src, dst=dst, proto=Protocol.UDP, dport=dport, size=size, **kw)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" {self.flags.name}" if self.proto is Protocol.TCP else ""
        return (
            f"Packet#{self.uid}({self.proto.name}{extra} {self.src}->{self.dst} "
            f"size={self.size} ttl={self.ttl} kind={self.kind})"
        )


def _addr_column(values, n: Optional[int] = None) -> np.ndarray:
    """Coerce addresses (ints, IPv4Address, dotted quads, or a scalar to
    broadcast over ``n``) into an int64 column."""
    if isinstance(values, (int, np.integer, str, IPv4Address)):
        if n is None:
            raise SimulationError("scalar address needs a batch length")
        return np.full(n, _as_int(values), dtype=np.int64)
    arr = np.asarray(values)
    if arr.dtype.kind in "OUS":
        return np.array([_as_int(v) for v in arr.ravel().tolist()],
                        dtype=np.int64)
    return arr.astype(np.int64, copy=True)


def _int_column(values, n: int, *, enum_cls=None) -> np.ndarray:
    """Coerce scalars / sequences (possibly of enums) into an int64 column."""
    if enum_cls is not None and isinstance(values, enum_cls):
        values = values.value
    if isinstance(values, (int, np.integer, float, bool)):
        return np.full(n, int(values), dtype=np.int64)
    arr = np.asarray(values)
    if arr.dtype.kind == "O":
        return np.array([int(v.value) if isinstance(v, enum.Enum) else int(v)
                         for v in arr.ravel().tolist()], dtype=np.int64)
    return arr.astype(np.int64, copy=True)


class PacketBatch:
    """A structure-of-arrays batch of packets (the DPDK-style burst).

    One object carries N packets as parallel NumPy columns, so the data
    plane can amortise per-packet event dispatch into per-batch array
    operations: one heap event per batch, one drop-tail decision pass per
    link, one vectorised LPM per device.

    Columns (all length N, int64 unless noted):

    * ``src`` / ``dst`` — addresses as raw 32-bit values,
    * ``size`` / ``ttl`` / ``sport`` / ``dport`` / ``flow_id``,
    * ``proto`` / ``flags`` / ``icmp`` — enum *values* (``icmp`` uses -1
      for "no ICMP type"),
    * ``kind_code`` + shared ``kinds`` vocabulary tuple — ground-truth
      labels, bincount-able,
    * ``spoofed`` (bool), ``created_at`` (float64).

    Scalar-fallback contract: a batch carries only header and accounting
    fields.  Per-packet extras (``payload_digest``, ``true_origin``,
    ``marking``, ``overlay_dst``, ``uid``) do not batch; paths that need
    them (responders, record hosts, router filters, traceback marking)
    materialise scalar :class:`Packet` objects via :meth:`to_packets` and
    take the scalar code path.  ``to_packets`` therefore returns packets
    with those fields at their defaults and fresh uids.
    """

    __slots__ = ("src", "dst", "size", "ttl", "proto", "sport", "dport",
                 "flags", "icmp", "flow_id", "kind_code", "kinds",
                 "spoofed", "created_at")

    def __init__(self, src, dst, *, size=512, ttl=DEFAULT_TTL,
                 proto=Protocol.UDP, sport=0, dport=0, flags=TCPFlags.NONE,
                 icmp_type=None, flow_id=0, kind="legit", spoofed=False,
                 created_at=0.0, kinds: Optional[tuple] = None,
                 kind_code=None) -> None:
        self.src = _addr_column(src)
        n = len(self.src)
        self.dst = _addr_column(dst, n)
        self.size = np.maximum(_int_column(size, n), IP_HEADER_BYTES)
        self.ttl = _int_column(ttl, n)
        self.proto = _int_column(proto, n, enum_cls=Protocol)
        self.sport = _int_column(sport, n)
        self.dport = _int_column(dport, n)
        self.flags = _int_column(flags, n, enum_cls=TCPFlags)
        if icmp_type is None:
            self.icmp = np.full(n, -1, dtype=np.int64)
        else:
            self.icmp = _int_column(icmp_type, n, enum_cls=ICMPType)
        self.flow_id = _int_column(flow_id, n)
        if kind_code is not None:
            if kinds is None:
                raise SimulationError("kind_code column needs a kinds vocabulary")
            self.kind_code = np.asarray(kind_code, dtype=np.int64).copy()
            self.kinds = tuple(kinds)
        elif isinstance(kind, str):
            self.kind_code = np.zeros(n, dtype=np.int64)
            self.kinds = (kind,)
        else:
            vocab: dict[str, int] = {}
            codes = np.empty(n, dtype=np.int64)
            for i, k in enumerate(kind):
                codes[i] = vocab.setdefault(k, len(vocab))
            self.kind_code = codes
            self.kinds = tuple(vocab)
        if isinstance(spoofed, (bool, np.bool_)):
            self.spoofed = np.full(n, bool(spoofed), dtype=bool)
        else:
            self.spoofed = np.asarray(spoofed, dtype=bool).copy()
        if isinstance(created_at, (int, float, np.floating)):
            self.created_at = np.full(n, float(created_at), dtype=np.float64)
        else:
            self.created_at = np.asarray(created_at, dtype=np.float64).copy()
        for column in (self.dst, self.size, self.ttl, self.proto, self.sport,
                       self.dport, self.flags, self.icmp, self.flow_id,
                       self.kind_code, self.spoofed, self.created_at):
            if len(column) != n:
                raise SimulationError(
                    f"PacketBatch column length mismatch: {len(column)} != {n}")

    # ------------------------------------------------------------ factories
    @classmethod
    def udp(cls, src, dst, *, dport: int = 53, size: int = 512,
            **kw) -> "PacketBatch":
        """A burst of UDP datagrams (flood / DNS-style traffic)."""
        return cls(src, dst, proto=Protocol.UDP, dport=dport, size=size, **kw)

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketBatch":
        """Pack scalar packets into a batch (header/accounting fields only —
        see the scalar-fallback contract in the class docstring)."""
        return cls(
            src=[p.src.value for p in packets],
            dst=[p.dst.value for p in packets],
            size=[p.size for p in packets],
            ttl=[p.ttl for p in packets],
            proto=[p.proto.value for p in packets],
            sport=[p.sport for p in packets],
            dport=[p.dport for p in packets],
            flags=[p.flags.value for p in packets],
            icmp_type=[-1 if p.icmp_type is None else p.icmp_type.value
                       for p in packets],
            flow_id=[p.flow_id for p in packets],
            kind=[p.kind for p in packets],
            spoofed=[p.spoofed for p in packets],
            created_at=[p.created_at for p in packets],
        )

    @classmethod
    def concat(cls, batches: Iterable["PacketBatch"]) -> "PacketBatch":
        """Concatenate batches, merging their kind vocabularies."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls(src=np.empty(0, dtype=np.int64),
                       dst=np.empty(0, dtype=np.int64))
        vocab: dict[str, int] = {}
        codes = []
        for b in batches:
            remap = np.array([vocab.setdefault(k, len(vocab))
                              for k in b.kinds], dtype=np.int64)
            codes.append(remap[b.kind_code] if len(b.kinds) else b.kind_code)
        out = object.__new__(cls)
        for name in ("src", "dst", "size", "ttl", "proto", "sport", "dport",
                     "flags", "icmp", "flow_id", "spoofed", "created_at"):
            setattr(out, name,
                    np.concatenate([getattr(b, name) for b in batches]))
        out.kind_code = np.concatenate(codes)
        out.kinds = tuple(vocab)
        return out

    # ------------------------------------------------------------- views
    def __len__(self) -> int:
        return len(self.src)

    @property
    def total_bytes(self) -> int:
        return int(self.size.sum())

    def select(self, index) -> "PacketBatch":
        """A new batch of the rows picked by a boolean mask or index array
        (columns are copied by fancy indexing; the vocabulary is shared)."""
        out = object.__new__(PacketBatch)
        for name in ("src", "dst", "size", "ttl", "proto", "sport", "dport",
                     "flags", "icmp", "flow_id", "kind_code", "spoofed",
                     "created_at"):
            setattr(out, name, getattr(self, name)[index])
        out.kinds = self.kinds
        return out

    def kind_counts(self) -> dict[str, int]:
        """Packets per ground-truth kind (bincount over the code column)."""
        counts = np.bincount(self.kind_code, minlength=len(self.kinds))
        return {k: int(c) for k, c in zip(self.kinds, counts) if c}

    def bytes_by_kind(self) -> dict[str, int]:
        """Bytes per ground-truth kind."""
        totals = np.bincount(self.kind_code, weights=self.size,
                             minlength=len(self.kinds))
        return {k: int(t) for k, t in zip(self.kinds, totals) if t}

    def flow_keys(self) -> tuple[np.ndarray, np.ndarray]:
        """The device flow-cache key as two uint64 columns:
        ``src<<32|dst`` and ``proto<<16|dport``."""
        a = (self.src.astype(np.uint64) << np.uint64(32)) \
            | self.dst.astype(np.uint64)
        b = (self.proto.astype(np.uint64) << np.uint64(16)) \
            | (self.dport.astype(np.uint64) & np.uint64(0xFFFF))
        return a, b

    # ----------------------------------------------------- scalar fallback
    def packet_at(self, i: int) -> Packet:
        """Materialise row ``i`` as a scalar :class:`Packet` (fresh uid;
        non-batched fields at their defaults)."""
        icmp = int(self.icmp[i])
        return Packet(
            src=IPv4Address(int(self.src[i])),
            dst=IPv4Address(int(self.dst[i])),
            proto=Protocol(int(self.proto[i])),
            size=int(self.size[i]),
            ttl=int(self.ttl[i]),
            sport=int(self.sport[i]),
            dport=int(self.dport[i]),
            flags=TCPFlags(int(self.flags[i])),
            icmp_type=None if icmp < 0 else ICMPType(icmp),
            spoofed=bool(self.spoofed[i]),
            kind=self.kinds[int(self.kind_code[i])],
            flow_id=int(self.flow_id[i]),
            created_at=float(self.created_at[i]),
        )

    def to_packets(self) -> list[Packet]:
        """Materialise every row (the scalar-fallback path)."""
        return [self.packet_at(i) for i in range(len(self))]

    def write_back(self, i: int, packet: Packet) -> None:
        """Fold a scalar stage's mutations of row ``i``'s packet back into
        the columns (the fields the safety monitor tracks)."""
        self.src[i] = packet.src.value
        self.dst[i] = packet.dst.value
        self.ttl[i] = packet.ttl
        self.size[i] = packet.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(f"{k}={c}" for k, c in self.kind_counts().items())
        return f"PacketBatch(n={len(self)}, bytes={self.total_bytes}, {kinds})"
