"""Tests for the automated-reaction and network-debugging apps."""



from repro.attack import DirectFlood
from repro.core import DeploymentScope, NumberAuthority, Tcsp, TrafficControlService
from repro.core.apps import AutoReactionApp, NetworkDebuggingApp
from repro.net import LinkParams, Network, Packet, TopologyBuilder
from repro.util.units import Mbps, ms


def service_for(net, asn, user_id="victim-co"):
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    nms = tcsp.contract_isp("isp-all", net.topology.as_numbers)
    prefix = net.topology.prefix_of(asn)
    authority.record_allocation(prefix, user_id)
    user, cert = tcsp.register_user(user_id, [prefix])
    return TrafficControlService(tcsp, user, cert, home_nms=nms)


class TestAutoReaction:
    def _world(self, threshold=100.0, limit_bps=1e5):
        net = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=8))
        stubs = net.topology.stub_ases
        victim = net.add_host(stubs[0])
        attacker = net.add_host(stubs[1])
        svc = service_for(net, victim.asn)
        app = AutoReactionApp(svc, threshold_pps=threshold, limit_bps=limit_bps)
        app.deploy(DeploymentScope.explicit([victim.asn]))
        return net, victim, attacker, app

    def test_trigger_fires_under_attack_and_limits(self):
        net, victim, attacker, app = self._world()
        DirectFlood(net, [attacker], victim, rate_pps=2000.0, duration=0.5,
                    spoof="none", seed=1).launch()
        net.run()
        assert app.fired >= 1
        assert app.limited_packets() > 0
        delay = app.detection_delay(attack_start=0.0)
        assert delay is not None and delay < 0.5

    def test_no_firing_under_normal_load(self):
        net, victim, attacker, app = self._world(threshold=500.0)
        client = net.add_host(net.topology.stub_ases[2])
        for i in range(10):
            net.sim.schedule_at(i * 0.05, client.send,
                                Packet.udp(client.address, victim.address))
        net.run()
        assert app.fired == 0
        assert app.detection_delay(0.0) is None
        assert victim.received_packets == 10  # limiter never engaged

    def test_reaction_reduces_attack_delivery(self):
        net_base = Network(TopologyBuilder.hierarchical(2, 2, 5, seed=8))
        stubs = net_base.topology.stub_ases
        victim_b = net_base.add_host(stubs[0])
        attacker_b = net_base.add_host(stubs[1])
        DirectFlood(net_base, [attacker_b], victim_b, rate_pps=2000.0,
                    duration=0.5, spoof="none", seed=1).launch()
        net_base.run()
        baseline = victim_b.received_by_kind["attack"]

        net, victim, attacker, app = self._world(limit_bps=8e4)
        DirectFlood(net, [attacker], victim, rate_pps=2000.0, duration=0.5,
                    spoof="none", seed=1).launch()
        net.run()
        assert victim.received_by_kind["attack"] < baseline


class TestNetworkDebugging:
    def test_segment_delay_estimation(self):
        net = Network(TopologyBuilder.line(4))
        owner_asn = 0
        svc = service_for(net, owner_asn)
        app = NetworkDebuggingApp(svc)
        app.deploy(DeploymentScope.everywhere())
        src = net.add_host(0)
        dst = net.add_host(3)
        for i in range(20):
            net.sim.schedule_at(i * 0.01, src.send,
                                Packet.udp(src.address, dst.address, size=100))
        net.run()
        est = app.estimate_segment(1, 2)
        assert est is not None
        assert est.samples == 20
        assert est.loss_fraction == 0.0
        # transit link delay is 8 ms (transit tier) + serialization
        assert 0.005 < est.mean_delay < 0.05

    def test_loss_estimation_with_droppy_link(self):
        net = Network(TopologyBuilder.line(4))
        # squeeze the middle link so some probes die
        link = net.link_between(1, 2)
        link.bandwidth = 1e5  # 100 kbit/s: 200 B takes 16 ms to serialize
        link.buffer_bytes = 500
        svc = service_for(net, 0)
        app = NetworkDebuggingApp(svc)
        app.deploy(DeploymentScope.everywhere())
        src = net.add_host(0, access=LinkParams(bandwidth=Mbps(1000),
                                                delay=ms(1), buffer_bytes=10**7))
        dst = net.add_host(3)
        for i in range(50):
            net.sim.schedule_at(i * 0.0001, src.send,
                                Packet.udp(src.address, dst.address, size=200))
        net.run()
        est = app.estimate_segment(1, 2)
        assert est is not None
        assert est.loss_fraction > 0.0

    def test_estimate_path(self):
        net = Network(TopologyBuilder.line(5))
        svc = service_for(net, 0)
        app = NetworkDebuggingApp(svc)
        app.deploy(DeploymentScope.everywhere())
        src = net.add_host(0)
        dst = net.add_host(4)
        for i in range(5):
            net.sim.schedule_at(i * 0.01, src.send,
                                Packet.udp(src.address, dst.address))
        net.run()
        estimates = app.estimate_path(net.path(0, 4))
        assert len(estimates) == 4
        assert all(e.samples == 5 for e in estimates)

    def test_unobserved_segment_returns_none(self):
        net = Network(TopologyBuilder.line(3))
        svc = service_for(net, 0)
        app = NetworkDebuggingApp(svc)
        app.deploy(DeploymentScope.explicit([0]))
        assert app.estimate_segment(1, 2) is None

    def test_no_probes_returns_none(self):
        net = Network(TopologyBuilder.line(3))
        svc = service_for(net, 0)
        app = NetworkDebuggingApp(svc)
        app.deploy(DeploymentScope.everywhere())
        assert app.estimate_segment(0, 1) is None
