"""E7 — control-plane workflows and TCSP resilience (paper Figs. 3-5,
Sec. 5.1).

Walks the full registration (Fig. 4) and deployment (Fig. 5) workflows and
measures the two Sec. 5.1 availability claims:

* a single TCSP registration covers all contracted ISPs ("Only a single
  service registration is needed instead of a separate one with each ISP"),
* when the TCSP is unreachable (it is itself being DDoSed), users still
  control their services via the direct ISP-NMS path, with configuration
  forwarding between peer NMSes.
"""

from __future__ import annotations

from repro.core import (
    ComponentGraph,
    DeploymentScope,
    TrafficControlService,
)
from repro.core.components import HeaderFilter, HeaderMatch
from repro.errors import ControlPlaneUnavailable
from repro.experiments.common import ExperimentConfig, register
from repro.net import Network, Protocol
from repro.scenario import TopologySpec
from repro.scenario.tcs import build_tcs_world
from repro.util.tables import Table

__all__ = ["run", "workflow_table", "resilience_table"]

_TOPOLOGY = TopologySpec(kind="hierarchical", n_core=2, transit_per_core=2,
                         stub_per_transit=6)


def _world(cfg: ExperimentConfig, n_isps: int = 4):
    net = Network(_TOPOLOGY.build(cfg.seed))
    world = build_tcs_world(net, n_isps=n_isps, register=False)
    return (net, world.authority, world.tcsp, world.nmses, world.owner_asn,
            world.prefix)


def _factory(device_ctx):
    graph = ComponentGraph("drop-junk")
    graph.add(HeaderFilter("f", HeaderMatch(proto=Protocol.TCP, dport=7)))
    return graph


def workflow_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E7a: registration and deployment workflows (Figs. 4-5)",
        ["step", "outcome", "detail"],
    )
    net, authority, tcsp, nmses, victim_asn, prefix = _world(cfg)
    user, cert = tcsp.register_user("acme", [prefix])
    table.add_row("registerWithService + verifyOwnership", "ok",
                  f"certificate issued by {cert.issuer}, "
                  f"{len(cert.prefixes)} prefix(es)")
    svc = TrafficControlService(tcsp, user, cert, home_nms=nmses[0])
    result = svc.deploy(DeploymentScope.stub_borders(),
                        dst_graph_factory=_factory)
    configured = sum(len(v) for v in result.values())
    table.add_row("deploy via TCSP -> ISP NMSes", "ok",
                  f"{configured} devices configured across "
                  f"{len(result)} ISPs with ONE registration")
    touched = svc.set_active(False)
    table.add_row("deactivate via TCSP relay", "ok", f"{touched} devices")
    svc.set_active(True)
    table.add_row("re-activate via TCSP relay", "ok", f"{touched} devices")
    return table


def resilience_table(cfg: ExperimentConfig) -> Table:
    table = Table(
        "E7b: control under a DDoS on the TCSP itself (Sec. 5.1)",
        ["scenario", "deploy_ok", "devices_configured", "path"],
    )
    # healthy TCSP
    net, authority, tcsp, nmses, victim_asn, prefix = _world(cfg)
    user, cert = tcsp.register_user("acme", [prefix])
    svc = TrafficControlService(tcsp, user, cert, home_nms=nmses[0])
    result = svc.deploy(DeploymentScope.stub_borders(),
                        dst_graph_factory=_factory)
    table.add_row("TCSP reachable", True,
                  sum(len(v) for v in result.values()), "via TCSP")
    # TCSP down, no fallback
    net2, authority2, tcsp2, nmses2, victim_asn2, prefix2 = _world(cfg)
    user2, cert2 = tcsp2.register_user("acme", [prefix2])
    lonely = TrafficControlService(tcsp2, user2, cert2, home_nms=None)
    tcsp2.reachable = False
    try:
        lonely.deploy(DeploymentScope.stub_borders(), dst_graph_factory=_factory)
        table.add_row("TCSP under DDoS, no NMS fallback", True, -1, "?")
    except ControlPlaneUnavailable:
        table.add_row("TCSP under DDoS, no NMS fallback", False, 0, "blocked")
    # TCSP down, direct NMS path with peer forwarding
    net3, authority3, tcsp3, nmses3, victim_asn3, prefix3 = _world(cfg)
    user3, cert3 = tcsp3.register_user("acme", [prefix3])
    svc3 = TrafficControlService(tcsp3, user3, cert3, home_nms=nmses3[0])
    tcsp3.reachable = False
    result3 = svc3.deploy(DeploymentScope.stub_borders(),
                          dst_graph_factory=_factory)
    table.add_row("TCSP under DDoS, direct NMS + peer forwarding", True,
                  sum(len(v) for v in result3.values()),
                  "home NMS -> peers")
    table.add_note("the direct path reaches the same device coverage as the "
                   "TCSP path — the service survives attacks on its own "
                   "control plane")
    return table


def inband_table(cfg: ExperimentConfig) -> Table:
    """E7c: the control plane as real packets — a DDoS on the TCSP host
    measurably destroys control-request completion (Sec. 5.1)."""
    from repro.attack import DirectFlood
    from repro.core.inband import InbandControlPlane

    table = Table(
        "E7c: in-band control requests while the TCSP itself is flooded "
        "(Sec. 5.1)",
        ["flood_pps_on_tcsp", "requests_answered_%", "mean_latency_ms"],
    )
    for flood_pps in (0.0, 200.0, 2000.0, 10_000.0):
        net = Network(_TOPOLOGY.build(cfg.seed))
        tcsp = build_tcs_world(net, allocate=False).tcsp
        stubs = net.topology.stub_ases
        user_host = net.add_host(stubs[0])
        plane = InbandControlPlane(net, tcsp, tcsp_asn=stubs[8],
                                   user_host=user_host, timeout=0.3,
                                   tcsp_processing_pps=300.0)
        if flood_pps > 0:
            attackers = [net.add_host(a) for a in stubs[1:5]]
            DirectFlood(net, attackers, plane.tcsp_host,
                        rate_pps=flood_pps / 4, duration=1.5,
                        spoof="none", seed=cfg.seed).launch()
        for i in range(10):
            net.sim.schedule_at(0.2 + i * 0.1,
                                lambda: plane.request("ping") and None)
        net.run(until=2.5)
        latency = plane.mean_latency()
        table.add_row(flood_pps, round(plane.success_fraction() * 100, 1),
                      round(latency * 1e3, 1) if latency else "-")
    table.add_note("10 pings issued during the flood window; the TCSP host "
                   "services 300 pps — once the flood exceeds that, control "
                   "requests starve and the user must fall back to the "
                   "direct NMS path (E7b)")
    return table


@register("E7")
def run(cfg: ExperimentConfig) -> list[Table]:
    return [workflow_table(cfg), resilience_table(cfg), inband_table(cfg)]
