"""Tests for trace persistence and merging."""


from repro.net import Network, Packet, TopologyBuilder, TraceRecorder


def record_some(n=5):
    net = Network(TopologyBuilder.line(4))
    a = net.add_host(0)
    b = net.add_host(3)
    rec1 = TraceRecorder()
    rec2 = TraceRecorder()
    net.routers[1].add_filter("t", rec1)
    net.routers[2].add_filter("t", rec2)
    for i in range(n):
        a.send(Packet.udp(a.address, b.address, sport=i))
    net.run()
    return rec1, rec2


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        rec1, _ = record_some()
        path = tmp_path / "trace.jsonl"
        written = rec1.to_jsonl(path)
        assert written == 5
        loaded = TraceRecorder.load_jsonl(path)
        assert loaded == rec1.records

    def test_empty_roundtrip(self, tmp_path):
        rec = TraceRecorder()
        path = tmp_path / "empty.jsonl"
        assert rec.to_jsonl(path) == 0
        assert TraceRecorder.load_jsonl(path) == []

    def test_loaded_records_are_usable(self, tmp_path):
        rec1, _ = record_some()
        path = tmp_path / "trace.jsonl"
        rec1.to_jsonl(path)
        loaded = TraceRecorder.load_jsonl(path)
        assert all(r.proto == "UDP" for r in loaded)
        assert all(r.asn == 1 for r in loaded)


class TestMerge:
    def test_merge_is_time_ordered(self):
        rec1, rec2 = record_some()
        merged = TraceRecorder.merge([rec1, rec2])
        assert len(merged) == 10
        times = [r.time for r in merged]
        assert times == sorted(times)

    def test_merge_preserves_vantage_points(self):
        rec1, rec2 = record_some()
        merged = TraceRecorder.merge([rec1, rec2])
        assert {r.asn for r in merged} == {1, 2}

    def test_merged_trace_reconstructs_packet_journeys(self):
        """Every packet appears at AS1 strictly before AS2."""
        rec1, rec2 = record_some()
        merged = TraceRecorder.merge([rec1, rec2])
        by_uid = {}
        for r in merged:
            by_uid.setdefault(r.uid, []).append(r)
        for observations in by_uid.values():
            assert [o.asn for o in observations] == [1, 2]
