"""Benchmark regenerating E4: TCS defense sweep and filtering placement (Sec. 4.3, 6)."""

from repro.experiments import e4_tcs_defense

from conftest import run_and_print


def test_e4(benchmark, exp_cfg):
    """E4: TCS defense sweep and filtering placement (Sec. 4.3, 6)"""
    run_and_print(benchmark, e4_tcs_defense.run, exp_cfg)
