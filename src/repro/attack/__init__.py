"""DDoS attack framework.

Implements the paper's Sec. 2 attack scenarios as runnable workloads:

* the amplifying network of masters and agents (Fig. 1) — :mod:`roles`,
* direct UDP / TCP-SYN floods with optional source spoofing — :mod:`flood`,
* DDoS *reflector* attacks bouncing traffic off innocent servers — :mod:`reflector`,
* protocol-misuse attacks (TCP RST / ICMP unreachable teardown) — :mod:`protocol_misuse`,
* worm-based agent recruitment (Slammer/Blaster/MyDoom style) — :mod:`worm`,
* the three amplification metrics of Sec. 2.2 — :mod:`amplification`,
* scenario builders wiring all of it onto a topology — :mod:`scenarios`.
"""

from repro.attack.roles import AmplifyingNetwork, AttackRole
from repro.attack.flood import TrafficGenerator, DirectFlood
from repro.attack.reflector import ReflectorAttack, reflector_responder
from repro.attack.protocol_misuse import ConnectionPool, ProtocolMisuseAttack
from repro.attack.worm import EpidemicModel, PatchedEpidemicModel, WormOutbreak
from repro.attack.amplification import AmplificationReport, measure_amplification
from repro.attack.scenarios import AttackScenario, ScenarioConfig
from repro.attack.campaign import Campaign, CampaignPhase, TimelineSampler

__all__ = [
    "AttackRole",
    "AmplifyingNetwork",
    "TrafficGenerator",
    "DirectFlood",
    "ReflectorAttack",
    "reflector_responder",
    "ConnectionPool",
    "ProtocolMisuseAttack",
    "EpidemicModel",
    "PatchedEpidemicModel",
    "WormOutbreak",
    "AmplificationReport",
    "measure_amplification",
    "AttackScenario",
    "ScenarioConfig",
    "Campaign",
    "CampaignPhase",
    "TimelineSampler",
]
