"""The device's vectorised pure-observer fast path vs the scalar walk.

When every installed stage graph is a PASS-chain of batch-capable
observers (no drops, no mutations), ``AdaptiveDevice.process_batch``
collapses the per-packet verdict loop into one ``process_batch`` call per
component (see :meth:`repro.core.graph.ComponentGraph.batch_plan`).
Property under test: the fast path leaves component state, collector
counters and the metrics registry identical to the per-packet reference —
and never falls back to the scalar ``ComponentGraph.process`` walk.
"""

import hashlib
import json

import numpy as np

from repro.core import ComponentGraph
from repro.core.apps.statistics import TrafficMatrixCollector
from repro.core.components import (
    HeaderFilter,
    HeaderMatch,
    StatisticsCollector,
)
from repro.net import PacketBatch, Protocol
from repro.obs import scoped
from repro.scenario.devices import build_device

N_SUBSCRIBERS = 4
N_PACKETS = 300


def _resolver(addr):
    return int(addr) % 3


def _resolver_many(addrs):
    return np.asarray(addrs, dtype=np.int64) % 3


def _observer_device(vectorised=False):
    device, users = build_device(N_SUBSCRIBERS, with_services=False)
    for user in users:
        graph = ComponentGraph(f"obs:{user.user_id}")
        graph.chain(StatisticsCollector(),
                    TrafficMatrixCollector(
                        resolver=_resolver,
                        resolver_many=_resolver_many if vectorised else None))
        device.install(user, dst_graph=graph)
    return device, users


def _make_batch():
    rng = np.random.default_rng(77)
    n = N_PACKETS
    owned = (rng.integers(1, N_SUBSCRIBERS + 1, n) << 16) \
        + rng.integers(1, 2**16, n)
    outside = (172 << 24) + (16 << 16) + rng.integers(1, 2**16, n)
    dst = np.where(rng.random(n) < 0.7, owned, outside)
    proto = np.where(rng.random(n) < 0.5, Protocol.TCP.value,
                     Protocol.UDP.value)
    batch = PacketBatch(src=outside.astype(np.int64),
                        dst=dst.astype(np.int64),
                        proto=proto.astype(np.int64),
                        size=rng.integers(64, 1500, n).astype(np.int64))
    return batch


def _component_state(device):
    state = []
    for instance in device.services.values():
        for graph in (instance.src_graph, instance.dst_graph):
            if graph is None:
                continue
            for comp in graph.components():
                if isinstance(comp, StatisticsCollector):
                    state.append((comp.processed, comp.packets_by_proto,
                                  comp.bytes_by_proto,
                                  comp.rate.total(0.0),
                                  comp.byte_rate.total(0.0)))
                elif isinstance(comp, TrafficMatrixCollector):
                    state.append((comp.processed, dict(comp.packets),
                                  dict(comp.bytes)))
    return state


def _run(batched, vectorised=False):
    with scoped() as reg:
        device, _ = _observer_device(vectorised=vectorised)
        batch = _make_batch()
        if batched:
            # the fast path must never take the scalar graph walk
            walks = []
            original = ComponentGraph.process
            ComponentGraph.process = (  # type: ignore[method-assign]
                lambda self, p, c: walks.append(1) or original(self, p, c))
            try:
                passed, dropped = device.process_batch(batch, 0.0, None)
            finally:
                ComponentGraph.process = original  # type: ignore[method-assign]
            assert not walks, "observer batch fell back to the scalar walk"
            assert passed is not None and len(passed) == N_PACKETS
            assert dropped is None
        else:
            for packet in batch.to_packets():
                if device.wants(packet):
                    assert device.process(packet, 0.0, None) is not None
        return _component_state(device), reg.snapshot(), device.redirected


class TestObserverFastPath:
    def test_batch_matches_scalar_state_and_metrics(self):
        assert _run(batched=True) == _run(batched=False)

    def test_vectorised_resolver_same_state_skips_lru_counters(self):
        """``resolver_many`` bypasses the per-address LRU entirely, so the
        hit/miss counters stay at zero on the vectorised path (documented
        in ``TrafficMatrixCollector``); every other metric and all
        component state still match the scalar reference."""
        state, snap, redirected = _run(batched=True, vectorised=True)
        ref_state, ref_snap, ref_redirected = _run(batched=False)
        assert (state, redirected) == (ref_state, ref_redirected)
        lru = [k for k in ref_snap if k.startswith("stats.resolver_cache_")]
        assert lru and all(snap.pop(k) == 0 for k in lru)
        for k in lru:
            ref_snap.pop(k)
        assert snap == ref_snap

    def test_observers_saw_traffic(self):
        state, _, redirected = _run(batched=True)
        assert redirected > 0
        assert any(s[0] > 0 for s in state)

    def test_plan_exists_for_observer_chain(self):
        graph = ComponentGraph("obs")
        graph.chain(StatisticsCollector(),
                    TrafficMatrixCollector(resolver=_resolver))
        plan = graph.batch_plan()
        assert plan is not None and len(plan) == 2

    def test_no_plan_when_chain_may_drop(self):
        graph = ComponentGraph("filtered")
        graph.chain(StatisticsCollector(),
                    HeaderFilter("f", HeaderMatch(proto=Protocol.TCP,
                                                  dport=7)))
        assert graph.batch_plan() is None

    def test_mixed_deployment_still_correct(self):
        """One subscriber with a dropping filter: its flows take the
        scalar walk, the pure-observer subscribers keep the fast path,
        and state still matches the all-scalar reference."""

        def build(batched):
            with scoped() as reg:
                device, users = build_device(N_SUBSCRIBERS,
                                             with_services=False)
                for i, user in enumerate(users):
                    graph = ComponentGraph(f"svc:{user.user_id}")
                    if i == 0:
                        graph.chain(StatisticsCollector(),
                                    HeaderFilter("f", HeaderMatch(
                                        proto=Protocol.TCP, dport=7)))
                    else:
                        graph.chain(StatisticsCollector())
                    device.install(user, dst_graph=graph)
                batch = _make_batch()
                if batched:
                    device.process_batch(batch, 0.0, None)
                else:
                    for packet in batch.to_packets():
                        if device.wants(packet):
                            device.process(packet, 0.0, None)
                snapshot = hashlib.sha256(json.dumps(
                    reg.snapshot(), sort_keys=True).encode()).hexdigest()
                return _component_state(device), snapshot

        assert build(True) == build(False)
