#!/usr/bin/env python3
"""Run the micro-benchmarks and record the perf trajectory.

Usage::

    python tools/bench.py                      # run, write BENCH_micro.json
    python tools/bench.py --out /tmp/now.json  # write elsewhere
    python tools/bench.py --compare old.json   # run, then print speedups
    python tools/bench.py --compare old.json --against BENCH_micro.json
                                               # compare two existing files
    python tools/bench.py --check-schema tools/bench_schema.json
                                               # fail on metric renames
    python tools/bench.py --metrics-out bench.jsonl
                                               # also dump raw JSONL samples

Executes ``benchmarks/test_micro.py`` under pytest-benchmark, routes the
results through a :class:`repro.obs.MetricRegistry` (``bench.*`` gauges
labelled by benchmark name — the same export pipeline the experiments
use), then distils the registry into a small, diff-friendly
``BENCH_micro.json`` at the repo root: median / mean / stddev seconds and
rounds per benchmark.  Commit the file so every PR's perf effect is
visible in review, and compare any two snapshots with ``--compare``.

``--check-schema`` compares the emitted metric names and benchmark names
against a committed schema (``tools/bench_schema.json``), so a benchmark
or metric silently renamed or dropped fails CI instead of vanishing from
the trajectory; regenerate the schema with ``--write-schema``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import MetricRegistry  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_micro.json"
DEFAULT_SCHEMA = REPO_ROOT / "tools" / "bench_schema.json"
BENCH_FILE = "benchmarks/test_micro.py"

#: The per-benchmark statistics we publish, as ``bench.<field>`` gauges,
#: mapped to pytest-benchmark's key for the same quantity.
BENCH_FIELDS = {"median_s": "median", "mean_s": "mean",
                "stddev_s": "stddev", "rounds": "rounds"}

#: Batch-size-parametrized benchmarks publish ``bench.batch.<field>``
#: gauges labelled (benchmark, batch) instead of folding the size into
#: the name, so dashboards can sweep the batch dimension.
_BATCH_NAME = re.compile(r"^(?P<base>test_batch_\w+)\[(?P<batch>\d+)\]$")

#: Sketch benchmarks publish ``bench.sketch.<field>`` gauges the same
#: way, so the flow-statistics dimension stays separable from the
#: forwarding-path one on dashboards.
_SKETCH_NAME = re.compile(r"^(?P<base>test_sketch_\w+)\[(?P<batch>\d+)\]$")

#: Live-service benchmarks publish ``bench.service.<field>`` gauges, so
#: the facade's check path stays a separate dashboard dimension from the
#: simulator's forwarding path.
_SERVICE_NAME = re.compile(r"^(?P<base>test_service_\w+)$")

#: Policy-compiler benchmarks publish ``bench.policy.<field>`` gauges
#: labelled (benchmark, batch), keeping the interpreted-walk vs
#: compiled-batch axis separable from the raw forwarding path.
_POLICY_NAME = re.compile(r"^(?P<base>test_policy_\w+)\[(?P<batch>\d+)\]$")

#: The scalar/batched pair the perf-smoke ratio compares, with the
#: packets each moves per round (the scalar benchmark sends 500 packets;
#: the batch one sends its batch size).
SCALAR_BENCH = ("test_packet_forwarding_path", 500)
BATCH_BENCH = ("test_batch_forwarding_path", 1024)

#: Same shape for flow statistics: the exact per-packet Counter path vs
#: one vectorised Count-Min update of a 1024-key batch.
SKETCH_SCALAR_BENCH = ("test_sketch_scalar_update", 500)
SKETCH_BATCH_BENCH = ("test_sketch_batch_update", 1024)

#: The live-facade pair the perf-smoke ratio compares: 256 unowned-flow
#: checks (fast path) vs 256 owned-flow checks (full pipeline).
SERVICE_FAST_BENCH = ("test_service_check_fastpath", 256)
SERVICE_PIPELINE_BENCH = ("test_service_check_pipeline", 256)

#: The policy pair the perf-smoke ratio compares: the interpreted
#: component-graph walk vs one compiled vectorized batch program, both
#: over 1024 packets of a HeaderFilter -> PrefixBlacklist graph.
POLICY_INTERP_BENCH = ("test_policy_interpreted_walk", 1024)
POLICY_COMPILED_BENCH = ("test_policy_compiled_batch", 1024)


def run_benchmarks(pytest_args: list[str]) -> dict:
    """Run the micro-benchmark suite, returning pytest-benchmark's JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        cmd = [sys.executable, "-m", "pytest", BENCH_FILE, "--benchmark-only",
               f"--benchmark-json={raw_path}", "-q", *pytest_args]
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            ":" + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"pytest-benchmark failed (exit {proc.returncode})")
        with open(raw_path) as fh:
            return json.load(fh)


def to_registry(raw: dict) -> MetricRegistry:
    """Publish pytest-benchmark output as ``bench.*`` registry gauges."""
    registry = MetricRegistry("bench")
    for bench in sorted(raw.get("benchmarks", []), key=lambda b: b["name"]):
        stats = bench["stats"]
        batched = _BATCH_NAME.match(bench["name"])
        sketched = _SKETCH_NAME.match(bench["name"])
        serviced = _SERVICE_NAME.match(bench["name"])
        policied = _POLICY_NAME.match(bench["name"])
        for field, source in BENCH_FIELDS.items():
            if policied:
                registry.gauge(f"bench.policy.{field}",
                               help=f"pytest-benchmark {field} per policy "
                                    "execution mode and batch size",
                               benchmark=policied["base"],
                               batch=policied["batch"]).set(stats[source])
            elif serviced:
                registry.gauge(f"bench.service.{field}",
                               help=f"pytest-benchmark {field} per live "
                                    "service-check benchmark",
                               benchmark=serviced["base"]).set(stats[source])
            elif batched:
                registry.gauge(f"bench.batch.{field}",
                               help=f"pytest-benchmark {field} per batch size",
                               benchmark=batched["base"],
                               batch=batched["batch"]).set(stats[source])
            elif sketched:
                registry.gauge(f"bench.sketch.{field}",
                               help=f"pytest-benchmark {field} per sketch "
                                    "batch size",
                               benchmark=sketched["base"],
                               batch=sketched["batch"]).set(stats[source])
            else:
                registry.gauge(f"bench.{field}",
                               help=f"pytest-benchmark {field} per benchmark",
                               benchmark=bench["name"]).set(stats[source])
    return registry


def normalize(raw: dict) -> dict:
    """Distil the registry view to stable medians per benchmark."""
    registry = to_registry(raw)
    benchmarks: dict[str, dict] = {}
    for name, _kind, labels, value in registry.samples(include_timing=True):
        if name.startswith("bench.service."):
            field = name.split(".", 2)[2]
            key = labels["benchmark"]
        elif name.startswith(("bench.batch.", "bench.sketch.",
                              "bench.policy.")):
            field = name.split(".", 2)[2]
            key = f"{labels['benchmark']}[{labels['batch']}]"
        else:
            field = name.split(".", 1)[1]
            key = labels["benchmark"]
        benchmarks.setdefault(key, {})[field] = value
    info = raw.get("machine_info", {})
    return {
        "suite": BENCH_FILE,
        "generated_by": "tools/bench.py",
        "python": info.get("python_version"),
        "benchmarks": {name: dict(sorted(fields.items()))
                       for name, fields in sorted(benchmarks.items())},
    }


def schema_of(normalized: dict) -> dict:
    """The name-level shape of a snapshot: metric names + benchmark names."""
    metrics = [f"bench.{field}" for field in sorted(BENCH_FIELDS)]
    names = normalized["benchmarks"]
    if any(_BATCH_NAME.match(name) for name in names):
        metrics += [f"bench.batch.{field}" for field in sorted(BENCH_FIELDS)]
    if any(_SKETCH_NAME.match(name) for name in names):
        metrics += [f"bench.sketch.{field}" for field in sorted(BENCH_FIELDS)]
    if any(_SERVICE_NAME.match(name) for name in names):
        metrics += [f"bench.service.{field}" for field in sorted(BENCH_FIELDS)]
    if any(_POLICY_NAME.match(name) for name in names):
        metrics += [f"bench.policy.{field}" for field in sorted(BENCH_FIELDS)]
    return {
        "metrics": sorted(metrics),
        "benchmarks": sorted(normalized["benchmarks"]),
    }


def batch_ratio(normalized: dict) -> float | None:
    """Scalar-vs-batched per-packet forwarding ratio (>1 = batching wins).

    ``None`` when either side is absent from the snapshot (e.g. a run
    filtered with ``-k``).
    """
    scalar_name, scalar_packets = SCALAR_BENCH
    batch_base, batch_size = BATCH_BENCH
    benches = normalized["benchmarks"]
    scalar = benches.get(scalar_name)
    batched = benches.get(f"{batch_base}[{batch_size}]")
    if not scalar or not batched:
        return None
    return ((scalar["median_s"] / scalar_packets)
            / (batched["median_s"] / batch_size))


def sketch_ratio(normalized: dict) -> float | None:
    """Exact-scalar vs batched-sketch per-key update ratio (>1 = sketch
    batching wins).  ``None`` when either benchmark is absent."""
    scalar_name, scalar_keys = SKETCH_SCALAR_BENCH
    batch_base, batch_size = SKETCH_BATCH_BENCH
    benches = normalized["benchmarks"]
    scalar = benches.get(scalar_name)
    batched = benches.get(f"{batch_base}[{batch_size}]")
    if not scalar or not batched:
        return None
    return ((scalar["median_s"] / scalar_keys)
            / (batched["median_s"] / batch_size))


def service_ratio(normalized: dict) -> float | None:
    """Fast-path vs pipeline per-check ratio for the live facade (>1 =
    the unowned fast path is cheaper).  ``None`` when either benchmark is
    absent from the snapshot."""
    fast_name, fast_checks = SERVICE_FAST_BENCH
    pipe_name, pipe_checks = SERVICE_PIPELINE_BENCH
    benches = normalized["benchmarks"]
    fast = benches.get(fast_name)
    pipe = benches.get(pipe_name)
    if not fast or not pipe:
        return None
    return ((pipe["median_s"] / pipe_checks)
            / (fast["median_s"] / fast_checks))


def policy_ratio(normalized: dict) -> float | None:
    """Interpreted-walk vs compiled-batch per-packet ratio (>1 = the
    compiled vectorized program wins).  ``None`` when either benchmark is
    absent from the snapshot."""
    interp_name, interp_packets = POLICY_INTERP_BENCH
    compiled_base, compiled_batch = POLICY_COMPILED_BENCH
    benches = normalized["benchmarks"]
    interp = benches.get(f"{interp_name}[{interp_packets}]")
    compiled = benches.get(f"{compiled_base}[{compiled_batch}]")
    if not interp or not compiled:
        return None
    return ((interp["median_s"] / interp_packets)
            / (compiled["median_s"] / compiled_batch))


def check_schema(normalized: dict, schema_path: Path) -> list[str]:
    """Differences between the emitted names and the committed schema."""
    with open(schema_path) as fh:
        want = json.load(fh)
    have = schema_of(normalized)
    problems = []
    for key in ("metrics", "benchmarks"):
        missing = sorted(set(want.get(key, ())) - set(have[key]))
        extra = sorted(set(have[key]) - set(want.get(key, ())))
        if missing:
            problems.append(f"{key} missing vs schema: {missing}")
        if extra:
            problems.append(f"{key} not in schema (rename? run "
                            f"--write-schema): {extra}")
    return problems


def _medians(snapshot: dict) -> dict:
    """Benchmark name -> stats, accepting normalized or raw pytest JSON."""
    if isinstance(snapshot.get("benchmarks"), list):
        snapshot = normalize(snapshot)
    return snapshot["benchmarks"]


def compare(baseline: dict, current: dict) -> str:
    """Render a speedup table: baseline medians vs current medians."""
    base = _medians(baseline)
    cur = _medians(current)
    lines = [f"{'benchmark':42} {'before':>12} {'after':>12} {'speedup':>8}"]
    for name in sorted(set(base) | set(cur)):
        if name not in base or name not in cur:
            only = "before only" if name in base else "after only"
            lines.append(f"{name:42} {only:>34}")
            continue
        b, c = base[name]["median_s"], cur[name]["median_s"]
        ratio = b / c if c else float("inf")
        lines.append(f"{name:42} {b * 1e6:10.1f}us {c * 1e6:10.1f}us "
                     f"{ratio:7.2f}x")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"normalized output path (default {DEFAULT_OUT})")
    parser.add_argument("--compare", type=Path, metavar="BASELINE",
                        help="print a speedup table against this snapshot")
    parser.add_argument("--against", type=Path, metavar="CURRENT",
                        help="with --compare: use this existing snapshot "
                             "instead of running the suite")
    parser.add_argument("--check-schema", type=Path, metavar="SCHEMA",
                        help="fail unless emitted metric/benchmark names "
                             f"match this schema (e.g. {DEFAULT_SCHEMA})")
    parser.add_argument("--write-schema", type=Path, metavar="SCHEMA",
                        help="write the emitted name schema here and exit 0")
    parser.add_argument("--metrics-out", type=Path, metavar="FILE",
                        help="also dump the registry samples as JSONL")
    parser.add_argument("--check-batch-ratio", type=float, metavar="MIN",
                        help="fail unless the batched forwarding path is at "
                             "least MIN times faster per packet than the "
                             "scalar one (perf-smoke regression guard)")
    parser.add_argument("--check-sketch-ratio", type=float, metavar="MIN",
                        help="fail unless the batched sketch update is at "
                             "least MIN times faster per key than the exact "
                             "per-packet Counter path")
    parser.add_argument("--check-service-ratio", type=float, metavar="MIN",
                        help="fail unless the live facade's unowned fast "
                             "path is at least MIN times cheaper per check "
                             "than the owned-flow pipeline")
    parser.add_argument("--check-policy-ratio", type=float, metavar="MIN",
                        help="fail unless the compiled vectorized batch "
                             "program is at least MIN times faster per "
                             "packet than the interpreted graph walk")
    parser.add_argument("pytest_args", nargs="*",
                        help="extra arguments forwarded to pytest (prefix "
                             "with -- to separate)")
    args = parser.parse_args(argv)

    if args.compare and args.against:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        with open(args.against) as fh:
            current = json.load(fh)
        print(compare(baseline, current))
        return 0

    raw = run_benchmarks(args.pytest_args)
    normalized = normalize(raw)
    args.out.write_text(json.dumps(normalized, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({len(normalized['benchmarks'])} benchmarks)")
    if args.metrics_out:
        args.metrics_out.write_text(to_registry(raw).to_jsonl())
        print(f"wrote {args.metrics_out}")
    if args.write_schema:
        args.write_schema.write_text(
            json.dumps(schema_of(normalized), indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.write_schema}")
    if args.check_schema:
        problems = check_schema(normalized, args.check_schema)
        if problems:
            for problem in problems:
                print(f"schema check: {problem}", file=sys.stderr)
            return 1
        print(f"schema check: ok ({args.check_schema})")
    if args.check_batch_ratio is not None:
        ratio = batch_ratio(normalized)
        if ratio is None:
            print("batch ratio: scalar or batched forwarding benchmark "
                  "missing from this run", file=sys.stderr)
            return 1
        print(f"batch ratio: batched forwarding is {ratio:.1f}x the scalar "
              f"per-packet rate (floor {args.check_batch_ratio:g}x)")
        if ratio < args.check_batch_ratio:
            print(f"batch ratio: {ratio:.2f} below floor "
                  f"{args.check_batch_ratio:g} — batched data plane "
                  "regressed", file=sys.stderr)
            return 1
    if args.check_sketch_ratio is not None:
        ratio = sketch_ratio(normalized)
        if ratio is None:
            print("sketch ratio: scalar or batched sketch benchmark "
                  "missing from this run", file=sys.stderr)
            return 1
        print(f"sketch ratio: batched sketch update is {ratio:.1f}x the "
              f"exact per-key rate (floor {args.check_sketch_ratio:g}x)")
        if ratio < args.check_sketch_ratio:
            print(f"sketch ratio: {ratio:.2f} below floor "
                  f"{args.check_sketch_ratio:g} — vectorised sketch path "
                  "regressed", file=sys.stderr)
            return 1
    if args.check_service_ratio is not None:
        ratio = service_ratio(normalized)
        if ratio is None:
            print("service ratio: fast-path or pipeline service benchmark "
                  "missing from this run", file=sys.stderr)
            return 1
        print(f"service ratio: the unowned fast path is {ratio:.1f}x cheaper "
              f"per check than the owned-flow pipeline (floor "
              f"{args.check_service_ratio:g}x)")
        if ratio < args.check_service_ratio:
            print(f"service ratio: {ratio:.2f} below floor "
                  f"{args.check_service_ratio:g} — live check fast path "
                  "regressed", file=sys.stderr)
            return 1
    if args.check_policy_ratio is not None:
        ratio = policy_ratio(normalized)
        if ratio is None:
            print("policy ratio: interpreted or compiled policy benchmark "
                  "missing from this run", file=sys.stderr)
            return 1
        print(f"policy ratio: the compiled batch program is {ratio:.1f}x the "
              f"interpreted per-packet rate (floor "
              f"{args.check_policy_ratio:g}x)")
        if ratio < args.check_policy_ratio:
            print(f"policy ratio: {ratio:.2f} below floor "
                  f"{args.check_policy_ratio:g} — vectorized policy "
                  "programs regressed", file=sys.stderr)
            return 1
    if args.compare:
        with open(args.compare) as fh:
            baseline = json.load(fh)
        print(compare(baseline, normalized))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
