"""Multi-phase attack campaigns and timeline measurement.

Real incidents are not single-vector: the paper's motivation section
describes attackers who "construct new attack tools and variants" while
"defence strategies lag far behind" (Sec. 1).  A :class:`Campaign` plays
several attack phases against one victim — e.g. spoofed flood, then
reflector bounce, then forged-RST teardown — and a
:class:`TimelineSampler` records per-interval victim metrics so defenses
can be compared *over time* (detection lag, recovery, re-attack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import AttackConfigError
from repro.attack.flood import DirectFlood
from repro.attack.protocol_misuse import ConnectionPool, ProtocolMisuseAttack
from repro.attack.reflector import ReflectorAttack
from repro.net.network import Network
from repro.net.node import Host

__all__ = ["CampaignPhase", "Campaign", "TimelineSampler"]

PHASE_KINDS = ("direct-spoofed", "direct-unspoofed", "reflector", "rst-misuse")


@dataclass(frozen=True)
class CampaignPhase:
    """One attack wave."""

    kind: str
    start: float
    duration: float
    rate_pps: float = 200.0
    amplification: float = 5.0   # reflector phases
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise AttackConfigError(f"unknown phase kind {self.kind!r}")
        if self.duration <= 0 or self.start < 0:
            raise AttackConfigError("phase needs start >= 0 and duration > 0")

    @property
    def end(self) -> float:
        return self.start + self.duration


class TimelineSampler:
    """Per-interval victim metrics: attack/legit arrivals over time."""

    def __init__(self, victim: Host, interval: float = 0.1) -> None:
        self.victim = victim
        self.interval = interval
        self.times: list[float] = []
        self.attack_pps: list[float] = []
        self.legit_pps: list[float] = []
        self._last_attack = 0
        self._last_legit = 0

    def install(self, network: Network, until: float) -> None:
        network.sim.schedule_every(self.interval, self._sample, until=until)

    def _sample(self) -> None:
        attack = sum(n for k, n in self.victim.received_by_kind.items()
                     if k.startswith("attack"))
        legit = self.victim.received_by_kind.get("legit", 0)
        self.times.append(self.victim.network.sim.now)
        self.attack_pps.append((attack - self._last_attack) / self.interval)
        self.legit_pps.append((legit - self._last_legit) / self.interval)
        self._last_attack = attack
        self._last_legit = legit

    def attack_rate_during(self, start: float, end: float) -> float:
        """Mean attack packet rate inside [start, end)."""
        samples = [r for t, r in zip(self.times, self.attack_pps)
                   if start <= t < end]
        return sum(samples) / len(samples) if samples else 0.0

    def peak_attack_rate(self) -> float:
        return max(self.attack_pps, default=0.0)


class Campaign:
    """A scripted multi-phase attack against one victim."""

    def __init__(self, network: Network, victim: Host,
                 agents: list[Host], reflectors: list[Host],
                 phases: list[CampaignPhase], seed: int = 0) -> None:
        if not phases:
            raise AttackConfigError("campaign needs at least one phase")
        self.network = network
        self.victim = victim
        self.agents = agents
        self.reflectors = reflectors
        self.phases = sorted(phases, key=lambda p: p.start)
        self.seed = seed
        self.pool: Optional[ConnectionPool] = None
        self.sampler = TimelineSampler(victim)

    @property
    def end(self) -> float:
        return max(p.end for p in self.phases)

    def launch(self) -> None:
        """Schedule every phase and the timeline sampler."""
        for i, phase in enumerate(self.phases):
            if phase.kind in ("direct-spoofed", "direct-unspoofed"):
                DirectFlood(
                    self.network, self.agents, self.victim,
                    rate_pps=phase.rate_pps, duration=phase.duration,
                    start=phase.start,
                    spoof="random" if phase.kind == "direct-spoofed" else "none",
                    seed=self.seed + i,
                ).launch()
            elif phase.kind == "reflector":
                if not self.reflectors:
                    raise AttackConfigError("reflector phase without reflectors")
                ReflectorAttack(
                    self.network, self.agents, self.reflectors, self.victim,
                    rate_pps=phase.rate_pps, duration=phase.duration,
                    start=phase.start, amplification=phase.amplification,
                    mode="dns", seed=self.seed + i,
                ).launch()
            elif phase.kind == "rst-misuse":
                if self.pool is None:
                    raise AttackConfigError(
                        "rst-misuse phase needs a ConnectionPool "
                        "(set campaign.pool)")
                ProtocolMisuseAttack(
                    self.network, self.agents[0], self.pool,
                    rate_pps=phase.rate_pps, duration=phase.duration,
                    start=phase.start, mode="rst", seed=self.seed + i,
                ).launch()
        self.sampler.install(self.network, until=self.end + 0.5)

    def run(self, settle: float = 0.5) -> TimelineSampler:
        """Launch and run the whole campaign; returns the timeline."""
        self.launch()
        self.network.run(until=self.end + settle)
        return self.sampler

    def phase_report(self) -> list[tuple[str, float]]:
        """(phase label, mean attack pps at the victim) per phase."""
        out = []
        for phase in self.phases:
            label = phase.label or phase.kind
            out.append((label, self.sampler.attack_rate_during(
                phase.start, phase.end + 0.2)))
        return out
