"""Property tests of the Sec. 4.5 vetting edge cases (hypothesis).

Pins the *exact* boundaries: a component may sit right at the
per-component side-channel cap and a graph right at the 2x aggregate
cap; ``max_size_ratio == 1.0`` (no growth) is allowed; any non-empty
subset of the forbidden header fields is rejected.  Every rejection is
checked both through :func:`vet_component`/:func:`vet_graph` and the
compiler's vetting pass, which must agree byte-for-byte.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.components import Capabilities, Component, Verdict
from repro.core.graph import ComponentGraph
from repro.core.safety import (
    FORBIDDEN_HEADER_FIELDS,
    MAX_EXTRA_TRAFFIC_BPS,
    vet_component,
    vet_graph,
)
from repro.errors import VettingError
from repro.policy import Severity, lower_graph
from repro.policy.passes import vetting_pass


def make_component(name: str = "c", **caps) -> Component:
    class Probe(Component):
        capabilities = Capabilities(**caps)

        def process(self, packet, ctx):
            return Verdict.PASS

    return Probe(name)


def pass_messages(graph: ComponentGraph) -> list[str]:
    return [d.message for d in vetting_pass(lower_graph(graph))
            if d.severity is Severity.ERROR]


class TestExtraTrafficBoundary:
    def test_exact_cap_is_allowed(self):
        vet_component(make_component(extra_traffic_bps=MAX_EXTRA_TRAFFIC_BPS))

    def test_just_over_cap_is_rejected(self):
        over = math.nextafter(MAX_EXTRA_TRAFFIC_BPS, math.inf)
        with pytest.raises(VettingError):
            vet_component(make_component(extra_traffic_bps=over))

    @given(st.floats(min_value=0.0, max_value=2 * MAX_EXTRA_TRAFFIC_BPS,
                     allow_nan=False))
    @settings(max_examples=50)
    def test_rejected_iff_over_cap(self, bps):
        comp = make_component(extra_traffic_bps=bps)
        if bps > MAX_EXTRA_TRAFFIC_BPS:
            with pytest.raises(VettingError):
                vet_component(comp)
        else:
            vet_component(comp)


class TestAggregateBoundary:
    def build(self, budgets) -> ComponentGraph:
        graph = ComponentGraph("agg")
        graph.chain(*[make_component(f"c{i}", extra_traffic_bps=b)
                      for i, b in enumerate(budgets)])
        return graph

    def test_exact_double_cap_is_allowed(self):
        vet_graph(self.build([MAX_EXTRA_TRAFFIC_BPS, MAX_EXTRA_TRAFFIC_BPS]))

    def test_just_over_double_cap_is_rejected(self):
        graph = self.build([MAX_EXTRA_TRAFFIC_BPS, MAX_EXTRA_TRAFFIC_BPS,
                            1.0])
        with pytest.raises(VettingError):
            vet_graph(graph)

    @given(st.lists(st.floats(min_value=0.0,
                              max_value=MAX_EXTRA_TRAFFIC_BPS,
                              allow_nan=False),
                    min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_rejected_iff_sum_over_double_cap(self, budgets):
        graph = self.build(budgets)
        # the aggregate check sums the same way the pass does
        total = sum(c.capabilities.extra_traffic_bps
                    for c in graph.components())
        if total > 2 * MAX_EXTRA_TRAFFIC_BPS:
            with pytest.raises(VettingError) as err:
                vet_graph(graph)
            assert pass_messages(graph) == [str(err.value)]
        else:
            vet_graph(graph)
            assert pass_messages(graph) == []


class TestForbiddenFields:
    @given(st.sets(st.sampled_from(sorted(FORBIDDEN_HEADER_FIELDS)),
                   min_size=1))
    @settings(max_examples=20)
    def test_any_forbidden_subset_is_rejected(self, fields):
        graph = ComponentGraph("hdr")
        graph.chain(make_component(modifies_headers=frozenset(fields)))
        with pytest.raises(VettingError) as err:
            vet_graph(graph)
        assert pass_messages(graph) == [str(err.value)]

    @given(st.sets(st.sampled_from(["dscp", "ecn", "flags", "payload"])))
    @settings(max_examples=20)
    def test_other_fields_are_allowed(self, fields):
        vet_component(make_component(modifies_headers=frozenset(fields)))


class TestSizeRatio:
    def test_ratio_of_exactly_one_is_allowed(self):
        vet_component(make_component(max_size_ratio=1.0))

    def test_ratio_just_over_one_is_rejected(self):
        with pytest.raises(VettingError):
            vet_component(make_component(
                max_size_ratio=math.nextafter(1.0, math.inf)))

    @given(st.floats(min_value=0.1, max_value=2.0, allow_nan=False))
    @settings(max_examples=50)
    def test_rejected_iff_growing(self, ratio):
        comp = make_component(may_shrink=ratio < 1.0, max_size_ratio=ratio)
        if ratio > 1.0:
            with pytest.raises(VettingError):
                vet_component(comp)
        else:
            vet_component(comp)
