"""Unit and property tests for shortest-path routing."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.net import TopologyBuilder, build_routing
from repro.net.routing import as_path


class TestNextHops:
    def test_line_next_hops(self):
        t = TopologyBuilder.line(4)
        tables = build_routing(t)
        assert tables[0].next_hop(3) == 1
        assert tables[1].next_hop(3) == 2
        assert tables[3].next_hop(0) == 2
        assert tables[2].next_hop(2) == 2  # local delivery

    def test_paths_are_shortest(self):
        t = TopologyBuilder.powerlaw(n=40, seed=9)
        tables = build_routing(t)
        nodes = t.as_numbers
        for src in nodes[:10]:
            lengths = nx.single_source_shortest_path_length(t.graph, src)
            for dst in nodes[-10:]:
                path = as_path(tables, src, dst)
                assert len(path) - 1 == lengths[dst]
                # path must be a real walk in the graph
                for a, b in zip(path, path[1:]):
                    assert t.graph.has_edge(a, b)

    def test_path_endpoints(self):
        t = TopologyBuilder.hierarchical(seed=4)
        tables = build_routing(t)
        path = as_path(tables, t.stub_ases[0], t.stub_ases[-1])
        assert path[0] == t.stub_ases[0]
        assert path[-1] == t.stub_ases[-1]

    def test_self_path(self):
        t = TopologyBuilder.star(3)
        tables = build_routing(t)
        assert as_path(tables, 2, 2) == [2]

    def test_unknown_destination(self):
        t = TopologyBuilder.star(3)
        tables = build_routing(t)
        with pytest.raises(RoutingError):
            tables[0].next_hop(99)

    def test_deterministic_tie_breaking(self):
        t = TopologyBuilder.hierarchical(seed=2)
        t1 = build_routing(t)
        t2 = build_routing(t)
        for asn in t.as_numbers:
            for dst in t.as_numbers:
                assert t1[asn].next_hop(dst) == t2[asn].next_hop(dst)


class TestExpectedIngress:
    def test_line_expected_ingress(self):
        t = TopologyBuilder.line(4)
        tables = build_routing(t)
        # traffic from AS0 must reach AS3 via AS2
        assert tables[3].expected_ingress(0) == frozenset({2})
        assert tables[2].expected_ingress(0) == frozenset({1})

    def test_ingress_matches_actual_path(self):
        """The penultimate hop of every path is an expected ingress."""
        t = TopologyBuilder.powerlaw(n=30, seed=1)
        tables = build_routing(t)
        for src in t.as_numbers[:8]:
            for dst in t.as_numbers[-8:]:
                if src == dst:
                    continue
                path = as_path(tables, src, dst)
                if len(path) >= 2:
                    assert path[-2] in tables[dst].expected_ingress(src)

    def test_off_path_neighbour_not_expected(self):
        t = TopologyBuilder.line(4)
        tables = build_routing(t)
        # at AS1, traffic claiming source AS0 can only come from AS0, not AS2
        assert tables[1].expected_ingress(0) == frozenset({0})


@given(n=st.integers(min_value=3, max_value=30), seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=15, deadline=None)
def test_all_pairs_reach_destination(n, seed):
    t = TopologyBuilder.powerlaw(n=n, m=2, seed=seed)
    tables = build_routing(t)
    nodes = t.as_numbers
    for src in nodes:
        for dst in nodes[:: max(1, len(nodes) // 5)]:
            path = as_path(tables, src, dst)
            assert path[-1] == dst
            assert len(set(path)) == len(path)  # loop-free
