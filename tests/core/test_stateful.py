"""Tests for stateful teardown filtering and timing-anomaly detection."""


from repro.core import NetworkUser, StatefulTeardownFilter, TimingAnomalyFilter
from repro.core.components import ComponentContext, Verdict
from repro.net import ICMPType, IPv4Address, Packet, Prefix

A = IPv4Address.parse
OWNER = NetworkUser("acme", prefixes=[Prefix.parse("10.1.0.0/16")])


def ctx(now=0.0):
    return ComponentContext(now=now, asn=1, is_transit=False,
                            local_prefix=Prefix.parse("10.9.0.0/16"),
                            stage="dest", owner=OWNER)


PEER = A("10.5.0.1")
VICTIM = A("10.1.0.1")
STRANGER = A("10.7.0.9")


class TestStatefulTeardownFilter:
    def test_forged_rst_without_flow_dropped(self):
        f = StatefulTeardownFilter()
        rst = Packet.tcp_rst(PEER, VICTIM)
        assert f(rst, ctx(0.0)) is Verdict.DROP
        assert f.forged_dropped == 1

    def test_rst_from_live_flow_passes(self):
        f = StatefulTeardownFilter()
        data = Packet(src=PEER, dst=VICTIM, proto=__import__("repro.net", fromlist=["Protocol"]).Protocol.TCP,
                      sport=40000, dport=80)
        assert f(data, ctx(0.0)) is Verdict.PASS
        rst = Packet.tcp_rst(PEER, VICTIM, sport=40000, dport=80)
        assert f(rst, ctx(1.0)) is Verdict.PASS
        assert f.legit_teardowns == 1

    def test_flow_expires(self):
        f = StatefulTeardownFilter(flow_timeout=5.0)
        from repro.net import Protocol

        data = Packet(src=PEER, dst=VICTIM, proto=Protocol.TCP, sport=1, dport=80)
        f(data, ctx(0.0))
        rst = Packet.tcp_rst(PEER, VICTIM, sport=1, dport=80)
        assert f(rst, ctx(10.0)) is Verdict.DROP  # flow long gone

    def test_icmp_unreachable_treated_like_rst(self):
        f = StatefulTeardownFilter()
        icmp = Packet.icmp(STRANGER, VICTIM, ICMPType.HOST_UNREACHABLE)
        assert f(icmp, ctx(0.0)) is Verdict.DROP

    def test_ordinary_icmp_passes(self):
        f = StatefulTeardownFilter()
        ping = Packet.icmp(STRANGER, VICTIM, ICMPType.ECHO_REQUEST)
        assert f(ping, ctx(0.0)) is Verdict.PASS

    def test_different_ports_are_different_flows(self):
        f = StatefulTeardownFilter()
        from repro.net import Protocol

        f(Packet(src=PEER, dst=VICTIM, proto=Protocol.TCP, sport=1, dport=80), ctx(0.0))
        rst_other_port = Packet.tcp_rst(PEER, VICTIM, sport=2, dport=80)
        assert f(rst_other_port, ctx(0.1)) is Verdict.DROP

    def test_flow_table_bounded(self):
        f = StatefulTeardownFilter(max_flows=10, flow_timeout=0.1)
        from repro.net import Protocol

        for i in range(50):
            pkt = Packet(src=IPv4Address(i + 1), dst=VICTIM,
                         proto=Protocol.TCP, sport=i, dport=80)
            f(pkt, ctx(i * 1.0))
        assert len(f._flows) <= 11


class TestTimingAnomalyFilter:
    def _send_train(self, f, src, gaps, start=0.0):
        now = start
        verdicts = []
        for gap in gaps:
            now += gap
            pkt = Packet.udp(src, VICTIM)
            verdicts.append(f(pkt, ctx(now)))
        return verdicts

    def test_metronomic_source_flagged(self):
        f = TimingAnomalyFilter(min_samples=8)
        verdicts = self._send_train(f, PEER, [0.01] * 30)
        assert Verdict.DROP in verdicts
        assert int(PEER) in f.flagged_sources

    def test_bursty_source_passes(self):
        f = TimingAnomalyFilter(min_samples=8)
        gaps = [0.01, 0.5, 0.02, 1.3, 0.07, 0.9, 0.015, 2.0, 0.3, 0.05,
                1.1, 0.02, 0.6, 0.04, 0.8]
        verdicts = self._send_train(f, STRANGER, gaps)
        assert all(v is Verdict.PASS for v in verdicts)

    def test_source_recovers_when_timing_changes(self):
        f = TimingAnomalyFilter(min_samples=8, window=8)
        self._send_train(f, PEER, [0.01] * 20)
        assert int(PEER) in f.flagged_sources
        self._send_train(f, PEER, [0.01, 0.9, 0.05, 1.7, 0.02, 0.6, 0.3, 1.1],
                         start=10.0)
        assert int(PEER) not in f.flagged_sources

    def test_too_few_samples_never_flagged(self):
        f = TimingAnomalyFilter(min_samples=8)
        verdicts = self._send_train(f, PEER, [0.01] * 5)
        assert all(v is Verdict.PASS for v in verdicts)

    def test_independent_sources(self):
        f = TimingAnomalyFilter(min_samples=8)
        self._send_train(f, PEER, [0.01] * 20)
        verdicts = self._send_train(f, STRANGER,
                                    [0.3, 0.01, 1.2, 0.07, 0.5, 0.02, 0.9,
                                     0.04, 1.5, 0.2], start=100.0)
        assert all(v is Verdict.PASS for v in verdicts)

    def test_vettable(self):
        from repro.core import vet_component

        vet_component(StatefulTeardownFilter())
        vet_component(TimingAnomalyFilter())
