"""Fault plans and the injector: deterministic schedules, clean round
trips, and a simulator ``reset()`` that leaves no fault state behind.
"""

import pytest

from repro.core import NumberAuthority, Tcsp
from repro.errors import FaultConfigError
from repro.experiments.common import parallel_map
from repro.net import (
    FaultInjector,
    FaultKind,
    Fault,
    FaultPlan,
    Network,
    TopologyBuilder,
)

KNOBS = dict(horizon=4.0, device_asns=(10, 11, 12), nms_ids=("a", "b"),
             links=((0, 1),), n_crashes=3, n_flaps=1, n_partitions=1,
             n_loss_windows=1, loss_rate=0.4, tcsp_outages=1)


def plan_signature(seed: int) -> str:
    """Top-level so parallel_map can ship it to pool workers."""
    return FaultPlan.random(seed, **KNOBS).signature()


class TestFaultPlan:
    def test_same_seed_same_plan(self):
        assert plan_signature(3) == plan_signature(3)
        a = FaultPlan.random(3, **KNOBS)
        b = FaultPlan.random(3, **KNOBS)
        assert [f.key() for f in a] == [f.key() for f in b]

    def test_different_seed_different_plan(self):
        assert plan_signature(3) != plan_signature(4)

    def test_serial_vs_parallel_map_byte_identical(self):
        seeds = list(range(8))
        serial = [plan_signature(s) for s in seeds]
        fanned = parallel_map(plan_signature, seeds, workers=4)
        assert serial == fanned

    def test_faults_clear_before_horizon(self):
        plan = FaultPlan.random(1, **KNOBS)
        assert len(plan) == 7
        assert plan.last_clear < KNOBS["horizon"]

    def test_validation(self):
        with pytest.raises(FaultConfigError):
            FaultPlan([Fault(FaultKind.DEVICE_CRASH, -0.1, 1.0, (1,))])
        with pytest.raises(FaultConfigError):
            FaultPlan([Fault(FaultKind.DEVICE_CRASH, 0.1, 0.0, (1,))])
        with pytest.raises(FaultConfigError):
            FaultPlan([Fault(FaultKind.MESSAGE_LOSS, 0.1, 1.0, param=1.5)])
        with pytest.raises(FaultConfigError):
            FaultPlan.random(1, horizon=2.0, n_crashes=1)  # no targets

    def test_plan_is_sorted_by_start(self):
        plan = FaultPlan.random(9, **KNOBS)
        starts = [f.start for f in plan]
        assert starts == sorted(starts)

    def test_new_knobs_at_zero_leave_plans_byte_identical(self):
        # the storage/shard fault families draw their randomness AFTER the
        # pre-existing families, so plans without them are unchanged
        baseline = FaultPlan.random(3, **KNOBS)
        extended = FaultPlan.random(3, store_replicas=(0, 1, 2),
                                    n_store_crashes=0, n_shard_crashes=0,
                                    **KNOBS)
        assert baseline.signature() == extended.signature()

    def test_store_and_shard_crash_generation(self):
        plan = FaultPlan.random(3, store_replicas=(0, 1, 2),
                                n_store_crashes=2, n_shard_crashes=1, **KNOBS)
        store_faults = plan.by_kind(FaultKind.STORE_REPLICA_CRASH)
        shard_faults = plan.by_kind(FaultKind.NMS_SHARD_CRASH)
        assert len(store_faults) == 2 and len(shard_faults) == 1
        assert all(f.target[0] in (0, 1, 2) for f in store_faults)
        assert shard_faults[0].target[0] in KNOBS["nms_ids"]
        with pytest.raises(FaultConfigError):
            FaultPlan.random(3, horizon=2.0, n_store_crashes=1)  # no pool


def build_world():
    net = Network(TopologyBuilder.hierarchical(2, 2, 4, seed=1))
    tcsp = Tcsp("TCSP", NumberAuthority(), net)
    nms = tcsp.contract_isp("isp1", net.topology.as_numbers)
    return net, tcsp, nms


class TestFaultInjector:
    def test_device_crash_and_wiped_restart(self):
        net, tcsp, nms = build_world()
        asn = net.topology.stub_ases[0]
        plan = FaultPlan([Fault(FaultKind.DEVICE_CRASH, 0.1, 0.2, (asn,))])
        injector = FaultInjector(plan, net, tcsp=tcsp, nmses=[nms])
        injector.arm()
        device = nms.devices[asn]
        net.run(until=0.2)
        assert device.crashed
        net.run(until=1.0)
        assert not device.crashed
        assert device.crashes == 1 and device.restarts == 1
        assert device.services == {}  # Sec. 4.5: restart comes back wiped
        assert injector.injected == injector.cleared == 1

    def test_link_flap_round_trip(self):
        net, tcsp, nms = build_world()
        a, b = 0, 1  # the core-core adjacency is redundant in this topology
        plan = FaultPlan([Fault(FaultKind.LINK_FLAP, 0.1, 0.2, (a, b))])
        FaultInjector(plan, net, nmses=[nms]).arm()
        net.run(until=0.2)
        assert (a, b) not in net.links
        net.run(until=1.0)
        assert (a, b) in net.links

    def test_partitioning_link_flap_skipped(self):
        net, tcsp, nms = build_world()
        # a stub's only uplink: removing it would partition the Internet,
        # so the injector must skip the flap instead of corrupting routing
        stub = net.topology.stub_ases[0]
        peer = next(y for (x, y) in net.links if x == stub)
        plan = FaultPlan([Fault(FaultKind.LINK_FLAP, 0.1, 0.2, (stub, peer))])
        injector = FaultInjector(plan, net, nmses=[nms])
        injector.arm()
        net.run(until=1.0)
        assert injector.skipped == 1
        assert (stub, peer) in net.links

    def test_nms_partition_round_trip(self):
        net, tcsp, nms = build_world()
        plan = FaultPlan([Fault(FaultKind.NMS_PARTITION, 0.1, 0.2, ("isp1",))])
        FaultInjector(plan, net, tcsp=tcsp, nmses=[nms]).arm()
        net.run(until=0.2)
        assert nms.partitioned
        net.run(until=1.0)
        assert not nms.partitioned

    def test_tcsp_outage_round_trip(self):
        net, tcsp, nms = build_world()
        plan = FaultPlan([Fault(FaultKind.TCSP_OUTAGE, 0.1, 0.2)])
        FaultInjector(plan, net, tcsp=tcsp, nmses=[nms]).arm()
        net.run(until=0.2)
        assert not tcsp.reachable
        net.run(until=1.0)
        assert tcsp.reachable

    def test_overlapping_tcsp_outages_clear_last(self):
        net, tcsp, nms = build_world()
        plan = FaultPlan([Fault(FaultKind.TCSP_OUTAGE, 0.1, 0.4),
                          Fault(FaultKind.TCSP_OUTAGE, 0.2, 0.1)])
        FaultInjector(plan, net, tcsp=tcsp, nmses=[nms]).arm()
        net.run(until=0.35)  # the short outage cleared, the long one did not
        assert not tcsp.reachable
        net.run(until=1.0)
        assert tcsp.reachable

    def test_message_loss_window(self):
        net, tcsp, nms = build_world()
        plan = FaultPlan([Fault(FaultKind.MESSAGE_LOSS, 0.1, 0.3, param=1.0)])
        injector = FaultInjector(plan, net, tcsp=tcsp, nmses=[nms])
        injector.arm()
        assert tcsp.channel.injector is injector  # arm() attaches itself
        assert nms.channel.injector is injector
        net.run(until=0.2)
        assert injector.loss_rate_at(net.sim.now) == 1.0
        assert injector.drop_message("tcsp:TCSP", "op", net.sim.now)
        net.run(until=1.0)
        assert injector.loss_rate_at(net.sim.now) == 0.0
        assert not injector.drop_message("tcsp:TCSP", "op", net.sim.now)

    def test_store_replica_crash_round_trip(self):
        from repro.core import ReplicatedBackend

        net, tcsp, nms = build_world()
        store = ReplicatedBackend(3, seed=1)
        plan = FaultPlan([Fault(FaultKind.STORE_REPLICA_CRASH, 0.1, 0.2, (1,))])
        injector = FaultInjector(plan, net, tcsp=tcsp, nmses=[nms],
                                 store=store)
        injector.arm()
        net.run(until=0.2)
        assert not store.replica_up(1) and store.live_replicas == 2
        net.run(until=1.0)
        assert store.replica_up(1) and store.live_replicas == 3
        assert injector.injected == injector.cleared == 1

    def test_store_replica_crash_skipped_without_store(self):
        net, tcsp, nms = build_world()
        plan = FaultPlan([Fault(FaultKind.STORE_REPLICA_CRASH, 0.1, 0.2, (1,))])
        injector = FaultInjector(plan, net, tcsp=tcsp, nmses=[nms])
        injector.arm()
        net.run(until=1.0)
        assert injector.skipped == 1 and injector.injected == 0

    def test_nms_shard_crash_round_trip(self):
        net, tcsp, nms = build_world()
        plan = FaultPlan([Fault(FaultKind.NMS_SHARD_CRASH, 0.1, 0.2,
                                ("isp1",))])
        injector = FaultInjector(plan, net, tcsp=tcsp, nmses=[nms])
        injector.arm()
        net.run(until=0.2)
        assert nms.partitioned and nms.nms_crashes == 1
        net.run(until=1.0)
        assert not nms.partitioned  # restarted and reconciled

    def test_nms_shard_crash_unknown_target_skipped(self):
        net, tcsp, nms = build_world()
        plan = FaultPlan([Fault(FaultKind.NMS_SHARD_CRASH, 0.1, 0.2,
                                ("no-such-isp",))])
        injector = FaultInjector(plan, net, tcsp=tcsp, nmses=[nms])
        injector.arm()
        net.run(until=1.0)
        assert injector.skipped == 1

    def test_arm_twice_rejected(self):
        net, tcsp, nms = build_world()
        injector = FaultInjector(FaultPlan(), net, nmses=[nms])
        injector.arm()
        with pytest.raises(FaultConfigError):
            injector.arm()


class TestSimulatorReset:
    def test_reset_clears_fault_state(self):
        net, tcsp, nms = build_world()
        asn = net.topology.stub_ases[0]
        plan = FaultPlan([Fault(FaultKind.DEVICE_CRASH, 0.1, 5.0, (asn,)),
                          Fault(FaultKind.MESSAGE_LOSS, 0.1, 5.0, param=1.0)])
        injector = FaultInjector(plan, net, tcsp=tcsp, nmses=[nms])
        injector.arm()
        net.run(until=0.2)
        assert injector.active
        net.sim.reset()
        assert not injector.armed
        assert not injector.active
        assert injector.messages_dropped == 0
        assert tcsp.channel.injector is None  # detached again
        assert net.sim.pending == 0
        # a reset injector can be re-armed for the next trial
        injector.arm()
        assert net.sim.pending == 2 * len(plan)

    def test_reset_clears_watchdog_timer(self):
        net, tcsp, nms = build_world()
        nms.start_watchdog(interval=0.1)
        net.run(until=0.35)
        assert nms.watchdog_ticks == 3
        net.sim.reset()
        assert nms._watchdog_event is None
        assert net.sim.pending == 0
        net.run(until=1.0)
        assert nms.watchdog_ticks == 3  # no zombie heartbeat survived reset

    def test_reset_hooks_run_once_then_discarded(self):
        net, _, _ = build_world()
        fired = []
        net.sim.add_reset_hook(lambda: fired.append(1))
        net.sim.reset()
        net.sim.reset()
        assert fired == [1]
