"""Tests for ownership certificates."""

import pytest

from repro.core import CertificateAuthority
from repro.errors import CertificateError
from repro.net import Prefix

P = Prefix.parse


def issue(ca=None, now=0.0, validity=100.0):
    ca = ca or CertificateAuthority("TCSP")
    cert = ca.issue("acme", [P("10.1.0.0/16"), P("10.2.0.0/16")], now=now,
                    validity=validity)
    return ca, cert


class TestIssueVerify:
    def test_valid_certificate_verifies(self):
        ca, cert = issue()
        ca.verify(cert, now=50.0)
        assert ca.is_valid(cert, now=50.0)

    def test_expired_certificate_rejected(self):
        ca, cert = issue(validity=10.0)
        with pytest.raises(CertificateError):
            ca.verify(cert, now=11.0)

    def test_not_yet_valid_rejected(self):
        ca, cert = issue(now=100.0)
        with pytest.raises(CertificateError):
            ca.verify(cert, now=50.0)

    def test_wrong_issuer_rejected(self):
        _, cert = issue()
        other = CertificateAuthority("OTHER")
        with pytest.raises(CertificateError):
            other.verify(cert, now=50.0)

    def test_tampered_prefixes_rejected(self):
        import dataclasses

        ca, cert = issue()
        forged = dataclasses.replace(cert, prefixes=(P("0.0.0.0/0"),))
        with pytest.raises(CertificateError):
            ca.verify(forged, now=50.0)

    def test_tampered_user_rejected(self):
        import dataclasses

        ca, cert = issue()
        forged = dataclasses.replace(cert, user_id="evil")
        with pytest.raises(CertificateError):
            ca.verify(forged, now=50.0)

    def test_revocation(self):
        ca, cert = issue()
        ca.verify(cert, now=1.0)
        ca.revoke(cert)
        with pytest.raises(CertificateError):
            ca.verify(cert, now=1.0)

    def test_same_issuer_name_different_secret_rejected(self):
        ca1 = CertificateAuthority("TCSP", secret=b"a" * 32)
        ca2 = CertificateAuthority("TCSP", secret=b"b" * 32)
        cert = ca1.issue("acme", [P("10.1.0.0/16")], now=0.0)
        with pytest.raises(CertificateError):
            ca2.verify(cert, now=1.0)


class TestCovers:
    def test_covers_exact_and_subprefix(self):
        _, cert = issue()
        assert cert.covers(P("10.1.0.0/16"))
        assert cert.covers(P("10.1.2.0/24"))
        assert not cert.covers(P("10.3.0.0/16"))
        assert not cert.covers(P("10.0.0.0/8"))  # broader than owned
