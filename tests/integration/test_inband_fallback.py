"""Integration: the complete Sec. 5.1 resilience story, packet-level.

1. The victim registers through the *in-band* control plane (real packets
   to the TCSP host).
2. An attacker floods the TCSP host: further in-band requests time out.
3. The victim falls back to the direct ISP-NMS path and deploys its
   defense anyway.
4. The defense works: a simultaneous reflector attack on the victim dies.
"""

import pytest

from repro.attack import DirectFlood, ReflectorAttack
from repro.core import (
    DeploymentScope,
    NumberAuthority,
    Tcsp,
    TrafficControlService,
)
from repro.core.apps import AntiSpoofApp
from repro.core.inband import InbandControlPlane
from repro.errors import ControlPlaneUnavailable
from repro.net import Network, TopologyBuilder


@pytest.fixture()
def world():
    net = Network(TopologyBuilder.hierarchical(2, 2, 8, seed=19))
    authority = NumberAuthority()
    tcsp = Tcsp("TCSP", authority, net)
    nms = tcsp.contract_isp("isp", net.topology.as_numbers)
    stubs = net.topology.stub_ases
    victim = net.add_host(stubs[0])
    plane = InbandControlPlane(net, tcsp, tcsp_asn=stubs[15],
                               user_host=victim, timeout=0.3,
                               tcsp_processing_pps=200.0)
    prefix = net.topology.prefix_of(victim.asn)
    authority.record_allocation(prefix, "victim-co")
    return net, authority, tcsp, nms, victim, plane, stubs, prefix


class TestFullResilienceStory:
    def test_register_inband_then_fallback_deploy_under_tcsp_flood(self, world):
        net, authority, tcsp, nms, victim, plane, stubs, prefix = world

        # phase 1: in-band registration while the network is healthy
        reg = plane.request("register", payload=("victim-co", [prefix]))
        net.run(until=0.5)
        assert reg.completed_at is not None and reg.error is None
        user, cert = reg.result

        # phase 2: the TCSP comes under fire
        tcsp_attackers = [net.add_host(a) for a in stubs[1:4]]
        DirectFlood(net, tcsp_attackers, plane.tcsp_host, rate_pps=1500.0,
                    duration=2.0, spoof="none", seed=2).launch()
        probe = {}
        net.sim.schedule_at(1.0, lambda: probe.update(r=plane.request("ping")))
        net.run(until=1.6)
        assert probe["r"].timed_out  # in-band path is dead

        # phase 3: out-of-band fallback through the home NMS still works
        tcsp.reachable = False  # the victim concluded the TCSP is gone
        svc = TrafficControlService(tcsp, user, cert, home_nms=nms)
        app = AntiSpoofApp(svc)
        app.deploy(DeploymentScope.stub_borders())
        assert svc.fallback_used == 1

        # phase 4: the reflector attack against the victim dies at source
        agents = [net.add_host(a) for a in stubs[4:9]]
        reflectors = [net.add_host(a) for a in stubs[9:13]]
        start = net.sim.now
        ReflectorAttack(net, agents, reflectors, victim, rate_pps=200.0,
                        duration=0.5, start=start + 0.05, seed=3).launch()
        net.run(until=start + 1.0)
        assert victim.received_by_kind.get("attack-reflected", 0) == 0
        assert app.dropped() > 0

    def test_without_fallback_the_user_is_stuck(self, world):
        net, authority, tcsp, nms, victim, plane, stubs, prefix = world
        reg = plane.request("register", payload=("victim-co", [prefix]))
        net.run(until=0.5)
        user, cert = reg.result
        tcsp.reachable = False
        svc = TrafficControlService(tcsp, user, cert, home_nms=None)
        with pytest.raises(ControlPlaneUnavailable):
            AntiSpoofApp(svc).deploy()
