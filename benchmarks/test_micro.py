"""Micro-benchmarks of the performance-critical primitives.

These are the hot paths identified by profiling (per the HPC guides:
measure, then optimise): the ownership/routing trie lookup, the adaptive
device's redirect decision and two-stage pipeline, the event loop, the
packet-level forwarding path, and the vectorised fluid evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ComponentGraph, NetworkUser, OwnershipRegistry
from repro.core.components import HeaderFilter, HeaderMatch
from repro.experiments.e6_scalability import build_device
from repro.net import (
    Flow,
    FlowSet,
    FluidNetwork,
    IPv4Address,
    LinkParams,
    Network,
    Packet,
    PacketBatch,
    Prefix,
    PrefixTable,
    Protocol,
    Simulator,
    TopologyBuilder,
)
from repro.util.units import Mbps, ms


@pytest.fixture(scope="module")
def loaded_trie() -> PrefixTable:
    table = PrefixTable()
    rng = np.random.default_rng(1)
    for _ in range(10_000):
        value = int(rng.integers(0, 2**32))
        length = int(rng.integers(8, 25))
        table.insert(Prefix.make(value, length), value)
    return table


def test_prefix_trie_lookup(benchmark, loaded_trie):
    """Longest-prefix match against 10k routes (per-packet cost)."""
    addrs = [int(x) for x in np.random.default_rng(2).integers(0, 2**32, 256)]

    def lookups():
        for a in addrs:
            loaded_trie.lookup(a)

    benchmark(lookups)


def test_prefix_compiled_batch_lookup(benchmark, loaded_trie):
    """Vectorised LPM: one NumPy batch of 4096 addresses vs 10k routes."""
    addrs = np.random.default_rng(2).integers(0, 2**32, 4096)
    compiled = loaded_trie.compile()

    benchmark(compiled.lookup_many, addrs)


def test_device_redirect_decision(benchmark):
    """The per-packet `wants` check with 1000 subscribers installed."""
    device, users = build_device(1000)
    owned = Packet.udp(IPv4Address.parse("172.16.0.1"),
                       IPv4Address(users[500].prefixes[0].base + 3))
    unowned = Packet.udp(IPv4Address.parse("172.16.0.1"),
                         IPv4Address.parse("172.16.9.9"))

    def check():
        device.wants(owned)
        device.wants(unowned)

    benchmark(check)


def test_device_two_stage_pipeline(benchmark):
    """Full owned-packet processing through a 4-component graph."""
    registry = OwnershipRegistry()
    user = NetworkUser("u", prefixes=[Prefix.parse("10.1.0.0/16")])
    registry.register(user)
    from repro.core import AdaptiveDevice, DeviceContext
    from repro.net import ASRole

    device = AdaptiveDevice(
        DeviceContext(asn=1, role=ASRole.STUB,
                      local_prefix=Prefix.parse("10.9.0.0/16")), registry)
    graph = ComponentGraph("bench")
    graph.chain(*[HeaderFilter(f"r{i}", HeaderMatch(proto=Protocol.TCP, dport=7))
                  for i in range(4)])
    device.install(user, dst_graph=graph)
    pkt = Packet.udp(IPv4Address.parse("10.8.0.1"), IPv4Address.parse("10.1.0.1"))
    benchmark(device.process, pkt, 0.0, None)


def test_simulator_event_throughput(benchmark):
    """Schedule+dispatch cost of 10k no-op events."""

    def run_events():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, int)
        sim.run()

    benchmark(run_events)


def test_packet_forwarding_path(benchmark):
    """End-to-end delivery of 500 packets over a 5-AS path."""

    def run_net():
        net = Network(TopologyBuilder.line(5))
        a = net.add_host(0)
        b = net.add_host(4)
        for i in range(500):
            net.sim.schedule_at(i * 1e-4, a.send,
                                Packet.udp(a.address, b.address))
        net.run()
        assert b.received_packets > 0

    benchmark(run_net)


@pytest.fixture(scope="module")
def batch_line_net():
    """A 5-AS line with fat links (no drops) shared across batch rounds.

    The fluid-drain queue empties as simulated time advances between
    rounds, so reuse is sound; only delivery counters accumulate.
    """
    fat = LinkParams(bandwidth=Mbps(10_000), delay=ms(1),
                     buffer_bytes=1 << 30)
    net = Network(TopologyBuilder.line(5), access=fat,
                  link_params_fn=lambda a, b: fat)
    return net, net.add_host(0), net.add_host(4)


@pytest.mark.parametrize("batch_size", [1, 64, 1024, 16384])
def test_batch_forwarding_path(benchmark, batch_line_net, batch_size):
    """End-to-end delivery of one packet batch over the 5-AS line.

    Compare per-packet against ``test_packet_forwarding_path`` (the scalar
    pipeline): batch 1 is the SoA overhead floor, batch 1024 the target
    regime (the CI perf-smoke guards its per-packet ratio vs scalar).
    """
    net, a, b = batch_line_net

    def run_batch():
        src = np.full(batch_size, int(a.address), dtype=np.int64)
        before = b.received_packets
        a.send_batch(PacketBatch.udp(src, int(b.address)))
        net.run()
        assert b.received_packets - before == batch_size

    benchmark(run_batch)


def test_fluid_evaluation(benchmark):
    """Vectorised fluid evaluation: 500 flows on a 300-AS power law graph."""
    topo = TopologyBuilder.powerlaw(n=300, m=2, seed=3)
    fluid = FluidNetwork(topo)
    rng = np.random.default_rng(4)
    stubs = topo.stub_ases
    victim = stubs[0]
    flows = FlowSet([
        Flow(int(stubs[int(rng.integers(1, len(stubs)))]), victim, 1e6,
             kind="attack")
        for _ in range(500)
    ])
    fluid.evaluate(flows)  # warm the BFS cache like a sweep would
    benchmark(fluid.evaluate, flows)


def test_routing_table_construction(benchmark):
    """All-pairs next-hop computation for a 100-AS topology."""
    topo = TopologyBuilder.powerlaw(n=100, m=2, seed=5)
    from repro.net import build_routing

    benchmark(build_routing, topo)


@pytest.fixture(scope="module")
def sketch_traffic():
    """A zipf-ish source population with an AS resolver, as packets and as
    one SoA batch (the statistics collector's two input shapes)."""
    from repro.core.components import ComponentContext

    rng = np.random.default_rng(7)
    fan_in = 4096
    weights = 1.0 / np.arange(1, fan_in + 1) ** 1.1
    weights /= weights.sum()
    srcs = rng.choice(fan_in, size=16384, p=weights).astype(np.int64) + 1
    sizes = rng.integers(64, 1500, size=16384).astype(np.int64)
    dst = IPv4Address(10 << 24)
    packets = [Packet.udp(IPv4Address(int(s)), dst, size=int(z))
               for s, z in zip(srcs[:500], sizes[:500])]
    batch = PacketBatch.udp(srcs, int(dst))
    batch.size[:] = sizes
    ctx = ComponentContext(now=0.0, asn=1, is_transit=False,
                           local_prefix=Prefix.make(0, 8), stage="dest",
                           owner=None)
    resolver = lambda addr: int(addr) % 64  # noqa: E731 — 64 source ASes
    resolver_many = lambda a: np.asarray(a, dtype=np.int64) % 64  # noqa: E731
    return packets, batch, ctx, resolver, resolver_many


@pytest.fixture(scope="module")
def service_world():
    """A live :class:`ServiceFacade` serving 1000 subscribers, plus
    precomputed flow 4-tuples for its two regimes: unowned flows (the
    direct fast path) and owned flows (the two-stage pipeline)."""
    from repro.service import ManualClock, ServiceFacade

    facade = ServiceFacade(clock=ManualClock())
    for i in range(1000):
        user = NetworkUser(f"user-{i}", prefixes=[Prefix((i + 1) << 16, 16)])
        graph = ComponentGraph(f"svc:{user.user_id}")
        graph.chain(*[
            HeaderFilter(f"r{j}", HeaderMatch(proto=Protocol.TCP, dport=7))
            for j in range(2)
        ])
        facade.subscribe(user, dst_graph=graph)
    rng = np.random.default_rng(11)
    # 172.16/12 addresses are never owned by the 10/8 subscribers
    unowned = [(int(0xAC10_0000 + s), int(0xAC20_0000 + d))
               for s, d in zip(rng.integers(0, 1 << 16, 256),
                               rng.integers(0, 1 << 16, 256))]
    owned = [(int(0xAC10_0000 + s), int(((int(u) + 1) << 16) + 5))
             for s, u in zip(rng.integers(0, 1 << 16, 256),
                             rng.integers(0, 1000, 256))]
    return facade, unowned, owned


def test_service_check_fastpath(benchmark, service_world):
    """256 live checks of unowned flows: one cache probe + the shared
    PASS_DIRECT verdict each (the ≥100k checks/s load-harness regime)."""
    facade, unowned, _owned = service_world

    def run_checks():
        check = facade.check
        for src, dst in unowned:
            check(src, dst)

    benchmark(run_checks)


def test_service_check_pipeline(benchmark, service_world):
    """256 live checks of owned flows through packet materialisation and
    the two-stage pipeline (the redirected-traffic regime)."""
    facade, _unowned, owned = service_world

    def run_checks():
        check = facade.check
        for src, dst in owned:
            check(src, dst, dport=80)

    benchmark(run_checks)


def test_sketch_scalar_update(benchmark, sketch_traffic):
    """The exact per-packet Counter path: 500 scalar collector updates."""
    from repro.core.apps.statistics import TrafficMatrixCollector

    packets, _batch, ctx, resolver, _many = sketch_traffic
    collector = TrafficMatrixCollector(resolver=resolver, backend="exact")

    def run_scalar():
        for packet in packets:
            collector.process(packet, ctx)

    benchmark(run_scalar)


@pytest.mark.parametrize("batch_size", [64, 1024, 16384])
def test_sketch_batch_update(benchmark, sketch_traffic, batch_size):
    """One vectorised sketch-backed collector update of a whole batch.

    Compare per-packet against ``test_sketch_scalar_update`` (the exact
    per-packet Counter path): the CI perf-smoke guards the batch-1024
    ratio via ``tools/bench.py --check-sketch-ratio``.
    """
    from repro.core.apps.statistics import TrafficMatrixCollector

    _packets, batch, ctx, resolver, resolver_many = sketch_traffic
    rows = np.arange(batch_size)
    collector = TrafficMatrixCollector(resolver=resolver,
                                       resolver_many=resolver_many,
                                       backend="cmsketch", seed=7)

    def run_batch():
        collector.process_batch(batch, rows, ctx)

    benchmark(run_batch)


@pytest.fixture(scope="module")
def policy_world():
    """A dropping/filtering graph (HeaderFilter -> PrefixBlacklist), 1024
    mixed packets, and the same burst as one SoA batch — the two inputs
    the policy compiler's programs and the interpreted walk share."""
    from repro.core.components import ComponentContext, PrefixBlacklist

    def build() -> ComponentGraph:
        graph = ComponentGraph("bench-policy")
        graph.chain(
            HeaderFilter("f-udp", HeaderMatch(proto=Protocol.UDP,
                                              dport_not_in=(53,))),
            PrefixBlacklist("bl", [Prefix.parse("128.0.0.0/2")]),
        )
        return graph

    rng = np.random.default_rng(23)
    packets = [
        Packet.udp(IPv4Address(int(s)), IPv4Address(int(d)),
                   dport=int(p), size=int(z))
        for s, d, p, z in zip(rng.integers(0, 2**32, 1024),
                              rng.integers(0, 2**32, 1024),
                              rng.integers(0, 128, 1024),
                              rng.integers(64, 1500, 1024))
    ]
    batch = PacketBatch.from_packets(packets)
    ctx = ComponentContext(now=0.0, asn=1, is_transit=False,
                           local_prefix=Prefix.make(0, 8), stage="dest",
                           owner=None)
    return build, packets, batch, ctx


@pytest.mark.parametrize("batch_size", [1, 1024])
def test_policy_interpreted_walk(benchmark, policy_world, batch_size):
    """The scalar interpreted graph walk over ``batch_size`` packets (the
    pre-compiler execution path, kept as the differential oracle)."""
    build, packets, _batch, ctx = policy_world
    graph = build()
    subset = packets[:batch_size]

    def run_walk():
        process = graph.process
        for packet in subset:
            process(packet, ctx)

    benchmark(run_walk)


@pytest.mark.parametrize("batch_size", [1, 1024])
def test_policy_compiled_batch(benchmark, policy_world, batch_size):
    """One vectorized batch-program run over ``batch_size`` rows.

    Compare per-packet against ``test_policy_interpreted_walk``: the CI
    perf-smoke guards the batch-1024 ratio via ``tools/bench.py
    --check-policy-ratio``.
    """
    from repro.policy import compile_policy

    build, _packets, batch, ctx = policy_world
    compiled = compile_policy(build(), vet=True)
    rows = np.arange(batch_size)

    benchmark(compiled.run_batch, batch, rows, ctx)
