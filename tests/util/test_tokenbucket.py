"""Unit tests for the token-bucket rate limiter."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.util import TokenBucket


class TestBasics:
    def test_initial_burst_available(self):
        tb = TokenBucket(rate=10.0, burst=5.0)
        assert tb.admit(0.0, cost=5.0)

    def test_empty_bucket_rejects(self):
        tb = TokenBucket(rate=10.0, burst=5.0)
        assert tb.admit(0.0, cost=5.0)
        assert not tb.admit(0.0, cost=0.1)

    def test_refill_over_time(self):
        tb = TokenBucket(rate=10.0, burst=5.0)
        assert tb.admit(0.0, cost=5.0)
        assert not tb.admit(0.1, cost=2.0)  # only 1 token refilled
        assert tb.admit(0.2, cost=2.0)      # 2 tokens refilled

    def test_refill_caps_at_burst(self):
        tb = TokenBucket(rate=100.0, burst=5.0)
        assert tb.peek(1000.0) == 5.0

    def test_rejection_consumes_nothing(self):
        tb = TokenBucket(rate=0.0, burst=4.0)
        assert not tb.admit(0.0, cost=5.0)
        assert tb.admit(0.0, cost=4.0)

    def test_counters(self):
        tb = TokenBucket(rate=1.0, burst=1.0)
        tb.admit(0.0)
        tb.admit(0.0)
        assert tb.admitted == 1
        assert tb.rejected == 1

    def test_time_moving_backwards_is_clamped(self):
        tb = TokenBucket(rate=10.0, burst=10.0)
        assert tb.admit(5.0, cost=10.0)
        # a stale timestamp must not mint tokens or crash
        assert not tb.admit(4.0, cost=5.0)

    def test_reset(self):
        tb = TokenBucket(rate=1.0, burst=3.0)
        tb.admit(0.0, cost=3.0)
        tb.reset()
        assert tb.admitted == 0
        assert tb.peek(0.0) == 3.0

    @pytest.mark.parametrize("rate,burst", [(-1.0, 1.0), (1.0, 0.0), (1.0, -2.0)])
    def test_invalid_parameters_rejected(self, rate, burst):
        with pytest.raises(ReproError):
            TokenBucket(rate=rate, burst=burst)


class TestConformance:
    """Long-run admitted volume never exceeds burst + rate * elapsed."""

    @given(
        rate=st.floats(min_value=0.1, max_value=1e4),
        burst=st.floats(min_value=0.1, max_value=1e4),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),   # inter-arrival
                st.floats(min_value=0.01, max_value=100.0)  # cost
            ),
            min_size=1, max_size=200,
        ),
    )
    def test_admitted_volume_bounded(self, rate, burst, steps):
        tb = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        admitted_volume = 0.0
        for dt, cost in steps:
            now += dt
            if tb.admit(now, cost=cost):
                admitted_volume += cost
        assert admitted_volume <= burst + rate * now + 1e-6

    @given(rate=st.floats(min_value=1.0, max_value=100.0))
    def test_steady_rate_always_admitted(self, rate):
        """Traffic at exactly the token rate is never rejected."""
        tb = TokenBucket(rate=rate, burst=rate)
        for i in range(1, 100):
            assert tb.admit(i * 1.0, cost=rate)


class TestProperties:
    """Refill monotonicity, burst cap, and admit cost accounting."""

    @given(
        rate=st.floats(min_value=0.1, max_value=1e3),
        burst=st.floats(min_value=0.5, max_value=1e3),
        times=st.lists(st.floats(min_value=0.0, max_value=100.0),
                       min_size=2, max_size=50),
    )
    def test_refill_monotone_and_burst_capped(self, rate, burst, times):
        """With no admissions in between, the level only refills — peek at
        non-decreasing times is non-decreasing and never exceeds burst."""
        tb = TokenBucket(rate=rate, burst=burst)
        tb.admit(0.0, cost=burst)  # drain so the refill is observable
        last = tb.peek(0.0)
        for t in sorted(times):
            tokens = tb.peek(t)
            assert tokens >= last - 1e-9
            assert tokens <= burst + 1e-9
            last = tokens

    @given(
        rate=st.floats(min_value=0.1, max_value=1e3),
        burst=st.floats(min_value=0.5, max_value=1e3),
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),    # inter-arrival
                st.floats(min_value=0.01, max_value=50.0),  # cost
            ),
            min_size=1, max_size=100,
        ),
    )
    def test_admit_cost_accounting(self, rate, burst, steps):
        """Every admit call lands in exactly one counter, and the admitted
        volume plus the remaining level never exceeds what the bucket
        could have held (initial burst + refill)."""
        tb = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        admitted_volume = 0.0
        for dt, cost in steps:
            now += dt
            if tb.admit(now, cost=cost):
                admitted_volume += cost
        assert tb.admitted + tb.rejected == len(steps)
        assert admitted_volume + tb.peek(now) <= burst + rate * now + 1e-6

    @given(
        burst=st.floats(min_value=1.0, max_value=1e3),
        costs=st.lists(st.floats(min_value=0.01, max_value=10.0),
                       min_size=1, max_size=50),
    )
    def test_zero_rate_exact_accounting(self, burst, costs):
        """With no refill the bucket is pure subtraction: the level is
        exactly burst minus the admitted volume, and rejections consume
        nothing."""
        tb = TokenBucket(rate=0.0, burst=burst)
        admitted_volume = 0.0
        for cost in costs:
            if tb.admit(0.0, cost=cost):
                admitted_volume += cost
        assert tb.peek(0.0) == pytest.approx(burst - admitted_volume)
