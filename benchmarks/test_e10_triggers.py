"""Benchmark regenerating E10: trigger-armed automated reaction (Sec. 4.4)."""

from repro.experiments import e10_triggers

from conftest import run_and_print


def test_e10(benchmark, exp_cfg):
    """E10: trigger-armed automated reaction (Sec. 4.4)"""
    run_and_print(benchmark, e10_triggers.run, exp_cfg)
