"""Compiled policies: differential parity, signatures, caching, errors."""

import numpy as np
import pytest

from repro.core.components import (
    ComponentContext,
    HeaderFilter,
    HeaderMatch,
    LoggerComponent,
    PayloadHashFilter,
    PrefixBlacklist,
    RateLimiterComponent,
    SourceAntiSpoof,
    StatisticsCollector,
    Verdict,
)
from repro.core.compose import RuleSpec, ServiceSpec, compile_spec
from repro.core.device import DeviceContext
from repro.core.graph import ComponentGraph
from repro.core.ownership import NetworkUser
from repro.errors import ComponentGraphError, VettingError
from repro.net import ASRole, IPv4Address, Packet, PacketBatch, Prefix, Protocol
from repro.net.packet import TCPFlags
from repro.policy import compile_policy

LOCAL = Prefix.parse("10.9.0.0/16")
OWNER = NetworkUser("owner", prefixes=[Prefix.parse("10.1.0.0/16")])


def ctx(now: float = 0.0) -> ComponentContext:
    return ComponentContext(now=now, asn=9, is_transit=False,
                            local_prefix=LOCAL, stage="dest", owner=OWNER,
                            ingress_asn=None, local_origin=True)


def random_packets(n: int, seed: int) -> list[Packet]:
    rng = np.random.default_rng(seed)
    packets = []
    for _ in range(n):
        src = IPv4Address(int(rng.integers(0, 2**32)))
        dst = IPv4Address(int(rng.integers(0, 2**32)))
        if rng.random() < 0.5:
            packets.append(Packet.udp(src, dst,
                                      dport=int(rng.integers(0, 128)),
                                      size=int(rng.integers(64, 1500))))
        else:
            flags = TCPFlags.RST if rng.random() < 0.3 else TCPFlags.ACK
            packets.append(Packet(src=src, dst=dst, proto=Protocol.TCP,
                                  flags=flags, dport=80,
                                  size=int(rng.integers(64, 1500))))
    return packets


def build_mixed_chain() -> ComponentGraph:
    graph = ComponentGraph("mixed")
    graph.chain(
        HeaderFilter("f-rst", HeaderMatch(proto=Protocol.TCP,
                                          flags_any=TCPFlags.RST)),
        HeaderFilter("f-udp", HeaderMatch(proto=Protocol.UDP,
                                          dport_not_in=(53,))),
        StatisticsCollector("stats"),
        LoggerComponent("log"),
        PrefixBlacklist("bl", [Prefix.parse("128.0.0.0/2")]),
        RateLimiterComponent("rl", rate_bps=2_000_000.0),
    )
    return graph


def build_drop_dag() -> ComponentGraph:
    graph = ComponentGraph("dag")
    graph.add(HeaderFilter("f", HeaderMatch(proto=Protocol.UDP)))
    graph.add(SourceAntiSpoof("as", [Prefix.parse("10.1.0.0/16")]))
    graph.add(LoggerComponent("droplog"))
    graph.connect("f", "as", Verdict.PASS)
    graph.connect("f", "droplog", Verdict.DROP)
    graph.connect("as", "droplog", Verdict.DROP)
    return graph


def component_state(graph: ComponentGraph) -> dict:
    state = {}
    for comp in graph.components():
        state[comp.name] = (comp.processed, comp.dropped)
        if isinstance(comp, LoggerComponent):
            state[comp.name] += (tuple(comp.entries),)
        if isinstance(comp, RateLimiterComponent):
            state[comp.name] += (comp.bucket.admitted, comp.bucket.rejected)
    state["__graph__"] = (graph.packets_in, graph.packets_dropped)
    return state


@pytest.mark.parametrize("builder", [build_mixed_chain, build_drop_dag])
def test_differential_scalar_batch_parity(builder):
    """Interpreted walk, compiled scalar program, and compiled batch
    program produce identical verdicts, counters, and observer state."""
    packets = random_packets(256, seed=7)

    g_interp, g_scalar, g_batch = builder(), builder(), builder()
    verdicts_interp = [g_interp.process(p, ctx(i * 1e-4))
                       for i, p in enumerate(packets)]
    compiled_scalar = compile_policy(g_scalar, vet=True)
    verdicts_scalar = [compiled_scalar.process(p, ctx(i * 1e-4))
                       for i, p in enumerate(packets)]
    assert verdicts_interp == verdicts_scalar
    assert component_state(g_interp) == component_state(g_scalar)

    # batch path: one burst per timestamp-sharing window of 32 packets so
    # rate limiters see the same `now` sequence as the scalar walks do not
    # (token buckets admit per-row in ascending order within one call)
    compiled_batch = compile_policy(g_batch, vet=True)
    assert compiled_batch.batch_supported
    batch = PacketBatch.from_packets(packets)
    alive_all = []
    for start in range(0, len(packets), 32):
        rows = np.arange(start, min(start + 32, len(packets)))
        alive = compiled_batch.run_batch(batch, rows, ctx(start * 1e-4))
        alive_all.extend(bool(a) for a in alive)

    # scalar reference under the same batched timestamps
    g_ref = builder()
    compiled_ref = compile_policy(g_ref, vet=True)
    verdicts_ref = [compiled_ref.process(p, ctx((i // 32) * 32 * 1e-4))
                    for i, p in enumerate(packets)]
    assert alive_all == [v is Verdict.PASS for v in verdicts_ref]
    assert component_state(g_batch) == component_state(g_ref)


class TestSignature:
    DEV = DeviceContext(asn=3, role=ASRole.STUB,
                        local_prefix=Prefix.parse("10.3.0.0/16"))

    SPEC = ServiceSpec(name="svc", rules=(
        RuleSpec(action="drop", proto="tcp", tcp_flags="rst"),
        RuleSpec(action="blacklist", prefixes=("203.0.113.0/24",
                                               "198.51.100.0/24")),
        RuleSpec(action="rate-limit", rate_bps=1e6),
        RuleSpec(action="log"),
    ))

    def test_same_spec_same_signature(self):
        a = compile_spec(self.SPEC, self.DEV).compiled().signature
        b = compile_spec(self.SPEC, self.DEV).compiled().signature
        assert a == b

    def test_signature_ignores_device_asn(self):
        other = DeviceContext(asn=77, role=ASRole.TRANSIT,
                              local_prefix=Prefix.parse("10.7.0.0/16"))
        a = compile_spec(self.SPEC, self.DEV).compiled().signature
        b = compile_spec(self.SPEC, other).compiled().signature
        assert a == b

    def test_signature_independent_of_kwargs_order(self):
        """Satellite pin: dict/kwargs construction order must not leak
        into the signature (rules are logically identical)."""
        r1 = RuleSpec(**{"action": "drop", "proto": "tcp",
                         "tcp_flags": "rst", "dport": 80})
        r2 = RuleSpec(**{"dport": 80, "tcp_flags": "rst",
                         "proto": "tcp", "action": "drop"})
        a = compile_spec(ServiceSpec("s", (r1,)), self.DEV).compiled()
        b = compile_spec(ServiceSpec("s", (r2,)), self.DEV).compiled()
        assert a.signature == b.signature

    def test_signature_independent_of_set_iteration_order(self):
        """PayloadHashFilter's banned set must be signed in sorted order,
        not set-iteration order."""
        digests = [bytes([i]) * 8 for i in range(16)]

        def sig(order):
            graph = ComponentGraph("h")
            graph.chain(PayloadHashFilter("hf", order))
            return compile_policy(graph, vet=True).signature

        assert sig(digests) == sig(list(reversed(digests)))

    def test_rule_order_changes_signature(self):
        swapped = ServiceSpec(name="svc", rules=tuple(reversed(
            self.SPEC.rules)))
        a = compile_spec(self.SPEC, self.DEV).compiled().signature
        b = compile_spec(swapped, self.DEV).compiled().signature
        assert a != b


class TestErrorsAndCache:
    def test_structural_error_matches_validate(self):
        graph = ComponentGraph("empty")
        with pytest.raises(ComponentGraphError) as compiled_err:
            compile_policy(graph)
        with pytest.raises(ComponentGraphError) as validate_err:
            graph.validate()
        assert str(compiled_err.value) == str(validate_err.value)

    def test_vetting_error_matches_vet_graph(self):
        from repro.core.safety import vet_graph
        from repro.core.components import Capabilities, Component

        class Grower(Component):
            capabilities = Capabilities(max_size_ratio=2.0)

            def process(self, packet, ctx):
                return Verdict.PASS

        graph = ComponentGraph("amp")
        graph.chain(Grower("g"))
        with pytest.raises(VettingError) as compiled_err:
            compile_policy(graph, vet=True)
        with pytest.raises(VettingError) as vet_err:
            vet_graph(graph)
        assert str(compiled_err.value) == str(vet_err.value)
        # vet=False (the runtime path) must not reject an installed graph
        compile_policy(graph, vet=False)

    def test_compiled_cache_invalidated_on_mutation(self):
        graph = ComponentGraph("cache")
        graph.chain(HeaderFilter("a", HeaderMatch(proto=Protocol.UDP)))
        first = graph.compiled()
        assert graph.compiled() is first
        graph.add(LoggerComponent("log"))
        graph.connect("a", "log", Verdict.PASS)
        second = graph.compiled()
        assert second is not first
        assert len(second.policy) == 2

    def test_compile_primes_graph_cache(self):
        graph = ComponentGraph("primed")
        graph.chain(HeaderFilter("a", HeaderMatch(proto=Protocol.UDP)))
        compiled = compile_policy(graph, vet=True)
        assert graph.compiled() is compiled
