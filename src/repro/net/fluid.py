"""Flow-level ("fluid") network model for AS-scale parameter sweeps.

Packet-level simulation of thousands of ASes x thousands of attack sources
is wasteful when the questions are about *where traffic is filtered* and
*how much survives* — exactly the questions behind the paper's Sec. 3.2
deployment-effectiveness argument and the Sec. 4.3 "filter close to the
source" claim.  The fluid model treats each traffic source as a constant-
rate flow, routes it on the shortest AS path, applies per-AS filter pass
fractions, and resolves link congestion by iterative proportional scaling.

Numerically heavy parts (survival products, link load accumulation,
congestion iterations) run on NumPy arrays over a hop-expanded flow table,
following the vectorise-the-inner-loop guidance of the HPC coding guides.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol, Sequence

import numpy as np

from repro.errors import RoutingError, TopologyError
from repro.net.topology import ASRole, Topology, TopologyBuilder
from repro.util.units import Mbps

__all__ = ["Flow", "FlowSet", "FluidFilter", "FluidNetwork", "FluidResult",
           "flood_flows"]


@dataclass(frozen=True)
class Flow:
    """A constant-rate unidirectional traffic aggregate.

    ``claimed_src_asn`` is the AS that the packets' *source address field*
    points at; it differs from ``src_asn`` when the flow is spoofed (for a
    reflector-attack request flow it is the victim's AS).
    """

    src_asn: int
    dst_asn: int
    rate: float                  # bits/second
    kind: str = "legit"          # ground-truth label for accounting
    claimed_src_asn: int = -1    # -1 => not spoofed (== src_asn)
    tag: str = ""                # free-form experiment label

    @property
    def spoofed(self) -> bool:
        return self.claimed_src_asn != -1 and self.claimed_src_asn != self.src_asn

    @property
    def source_address_asn(self) -> int:
        """AS of the address written in the source field."""
        return self.src_asn if self.claimed_src_asn == -1 else self.claimed_src_asn


class FlowSet:
    """An ordered collection of flows with summary helpers."""

    def __init__(self, flows: Iterable[Flow] = ()) -> None:
        self.flows: list[Flow] = list(flows)

    def add(self, flow: Flow) -> None:
        self.flows.append(flow)

    def extend(self, flows: Iterable[Flow]) -> None:
        self.flows.extend(flows)

    def total_rate(self, kind: Optional[str] = None) -> float:
        return sum(f.rate for f in self.flows if kind is None or f.kind == kind)

    def by_kind(self) -> dict[str, list[Flow]]:
        out: dict[str, list[Flow]] = {}
        for f in self.flows:
            out.setdefault(f.kind, []).append(f)
        return out

    def __iter__(self):
        return iter(self.flows)

    def __len__(self) -> int:
        return len(self.flows)


class FluidFilter(Protocol):
    """Per-AS pass fraction for a flow traversing the fluid network.

    ``pos`` is the index of ``asn`` on ``path`` (0 = source AS); ``prev_asn``
    is the upstream neighbour the flow arrived from (None at the source).
    Return the fraction in [0, 1] of the flow the AS lets through.
    """

    def pass_fraction(self, flow: Flow, asn: int, prev_asn: Optional[int],
                      pos: int, path: Sequence[int]) -> float:
        ...  # pragma: no cover


@dataclass
class FluidResult:
    """Outcome of one fluid evaluation."""

    delivered: np.ndarray                  # bits/s per flow after filters+congestion
    filtered: np.ndarray                   # bits/s per flow removed by filters
    congestion_lost: np.ndarray            # bits/s per flow lost to overload
    link_load: dict[tuple[int, int], float]
    byte_hops: dict[str, float]            # kind -> (bits/s x hops) transported
    drop_distance: dict[str, float]        # kind -> mean hops travelled by filtered traffic
    flows: list[Flow] = field(default_factory=list)

    def delivered_rate(self, kind: Optional[str] = None, dst_asn: Optional[int] = None) -> float:
        """Total delivered bits/s, optionally restricted by kind and destination."""
        total = 0.0
        for i, f in enumerate(self.flows):
            if kind is not None and f.kind != kind:
                continue
            if dst_asn is not None and f.dst_asn != dst_asn:
                continue
            total += float(self.delivered[i])
        return total

    def sent_rate(self, kind: Optional[str] = None) -> float:
        return sum(f.rate for f in self.flows if kind is None or f.kind == kind)

    def survival_fraction(self, kind: str) -> float:
        """Delivered / sent for a ground-truth kind (0 when none sent)."""
        sent = self.sent_rate(kind)
        return self.delivered_rate(kind) / sent if sent > 0 else 0.0


def flood_flows(topology: Topology, victim: int, n_sources: int,
                rate_each: float, rng: np.random.Generator,
                kind: str = "attack") -> FlowSet:
    """A flooding-attack flow set: ``n_sources`` distinct stub ASes (victim
    excluded) each pushing ``rate_each`` bits/s at ``victim``.

    Sampling is deterministic given ``rng``; used by the CAIDA-scale E6
    tables where per-packet agent modelling would dominate runtime.
    """
    candidates = [a for a in topology.stub_ases if a != victim]
    if len(candidates) < n_sources:
        raise TopologyError(
            f"need {n_sources} stub sources but only {len(candidates)} available"
        )
    picked = rng.choice(len(candidates), size=n_sources, replace=False)
    return FlowSet(
        Flow(src_asn=candidates[i], dst_asn=victim, rate=rate_each, kind=kind)
        for i in sorted(picked)
    )


class FluidNetwork:
    """Fluid traffic evaluation on an AS topology.

    Routing is lazy: one BFS per *destination or claimed-source* AS actually
    referenced, cached — so sweeps over thousands of ASes stay fast.
    """

    def __init__(self, topology: Topology,
                 capacity_fn: Optional[Callable[[int, int], float]] = None,
                 path_fn: Optional[Callable[[int, int], list[int]]] = None) -> None:
        self.topology = topology
        self._adj: dict[int, list[int]] = {
            asn: sorted(topology.graph.neighbors(asn)) for asn in topology.graph.nodes
        }
        self._bfs_cache: dict[int, tuple[dict[int, int], dict[int, int]]] = {}
        self.capacity_fn = capacity_fn or self._default_capacity
        #: optional routing override (e.g. PolicyRouting(topo).path for
        #: valley-free paths); None = shortest-path BFS routing
        self.path_fn = path_fn
        self._path_fn_cache: dict[tuple[int, int], list[int]] = {}

    @classmethod
    def from_as_rel2(cls, source, prefix_length: int = 24,
                     capacity_fn: Optional[Callable[[int, int], float]] = None,
                     path_fn: Optional[Callable[[int, int], list[int]]] = None
                     ) -> "FluidNetwork":
        """Fluid network over a CAIDA ``as-rel2`` snapshot (or synthetic
        text in that shape) — the scalability path for E6: tens of
        thousands of ASes are tractable here where packet simulation is
        not."""
        topo = TopologyBuilder.from_as_rel2(source, prefix_length=prefix_length)
        return cls(topo, capacity_fn=capacity_fn, path_fn=path_fn)

    def _default_capacity(self, a: int, b: int) -> float:
        roles = {self.topology.role_of(a), self.topology.role_of(b)}
        if roles == {ASRole.CORE}:
            return Mbps(10_000)
        if ASRole.STUB in roles:
            return Mbps(1_000)
        return Mbps(4_000)

    # ---------------------------------------------------------------- routing
    def _bfs(self, root: int) -> tuple[dict[int, int], dict[int, int]]:
        """BFS from ``root``: (parent-toward-root, hop distance) maps."""
        if root in self._bfs_cache:
            return self._bfs_cache[root]
        if root not in self._adj:
            raise TopologyError(f"unknown AS {root}")
        parent = {root: root}
        dist = {root: 0}
        frontier = [root]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self._adj[u]:
                    if v not in dist:
                        dist[v] = dist[u] + 1
                        parent[v] = u
                        nxt.append(v)
            frontier = nxt
        self._bfs_cache[root] = (parent, dist)
        return parent, dist

    def path(self, src_asn: int, dst_asn: int) -> list[int]:
        """AS path ``[src, ..., dst]``: shortest-path by default, or the
        injected ``path_fn``'s choice (deterministic either way)."""
        if self.path_fn is not None:
            key = (src_asn, dst_asn)
            cached = self._path_fn_cache.get(key)
            if cached is None:
                cached = list(self.path_fn(src_asn, dst_asn))
                self._path_fn_cache[key] = cached
            return list(cached)
        parent, dist = self._bfs(dst_asn)
        if src_asn not in dist:
            raise RoutingError(f"AS {src_asn} unreachable from AS {dst_asn}")
        path = [src_asn]
        node = src_asn
        while node != dst_asn:
            node = parent[node]
            path.append(node)
        return path

    def distance(self, a: int, b: int) -> int:
        """Hop distance between two ASes."""
        _, dist = self._bfs(b)
        if a not in dist:
            raise RoutingError(f"AS {a} unreachable from AS {b}")
        return dist[a]

    def expected_ingress(self, at_asn: int, claimed_src_asn: int) -> frozenset[int]:
        """Neighbours of ``at_asn`` on a shortest path from ``claimed_src_asn``.

        The fluid-model analogue of :meth:`RoutingTable.expected_ingress`,
        used by route-based filtering.  Unknown claimed sources yield the
        empty set (no interface is legitimate for a bogus address).
        """
        if claimed_src_asn not in self._adj:
            return frozenset()
        if self.path_fn is not None:
            # under single-path policy routing the only legitimate ingress
            # is the penultimate hop of the policy path from the claimed
            # source (no route -> no legitimate interface at all)
            try:
                path = self.path(claimed_src_asn, at_asn)
            except RoutingError:
                return frozenset()
            return frozenset({path[-2]}) if len(path) >= 2 else frozenset()
        _, dist = self._bfs(claimed_src_asn)
        d_here = dist.get(at_asn)
        if d_here is None:
            return frozenset()
        return frozenset(n for n in self._adj[at_asn] if dist.get(n, -2) + 1 == d_here)

    # ------------------------------------------------------------- evaluation
    def evaluate(self, flows: FlowSet | Iterable[Flow],
                 filters: Sequence[FluidFilter] = (),
                 congestion: bool = True,
                 congestion_iters: int = 6) -> FluidResult:
        """Route all flows, apply filters, optionally resolve congestion.

        Filters are evaluated per (flow, hop) in Python — flow counts are
        modest — while congestion resolution runs vectorised over the
        hop-expanded link incidence arrays.
        """
        flow_list = list(flows)
        n = len(flow_list)
        rates = np.array([f.rate for f in flow_list], dtype=np.float64)
        paths: list[list[int]] = [self.path(f.src_asn, f.dst_asn) for f in flow_list]

        # --- filter pass: survival fraction per flow + byte-hop accounting
        survival = np.ones(n, dtype=np.float64)
        byte_hops: Counter[str] = Counter({f.kind: 0.0 for f in flow_list})
        filtered_hops_weighted: Counter[str] = Counter()  # kind -> sum(drop_rate*hops)
        filtered_total: Counter[str] = Counter()
        # hop-expanded incidence: flow index + link key per traversed link
        inc_flow: list[int] = []
        inc_link: list[tuple[int, int]] = []
        inc_scale: list[float] = []  # surviving fraction entering that link

        for i, (flow, path) in enumerate(zip(flow_list, paths)):
            frac = 1.0
            for pos, asn in enumerate(path):
                prev_asn = path[pos - 1] if pos > 0 else None
                for filt in filters:
                    p = filt.pass_fraction(flow, asn, prev_asn, pos, path)
                    if p < 1.0:
                        p = min(max(p, 0.0), 1.0)
                        dropped = frac * (1.0 - p)
                        if dropped > 0:
                            filtered_hops_weighted[flow.kind] += flow.rate * dropped * pos
                            filtered_total[flow.kind] += flow.rate * dropped
                        frac *= p
                if frac <= 0.0:
                    frac = 0.0
                    break
                if pos < len(path) - 1:
                    inc_flow.append(i)
                    inc_link.append((asn, path[pos + 1]))
                    inc_scale.append(frac)
                    byte_hops[flow.kind] += flow.rate * frac
            survival[i] = frac

        after_filter = rates * survival

        # --- congestion pass: proportional scaling on overloaded links
        scale = np.ones(n, dtype=np.float64)
        link_load: dict[tuple[int, int], float] = {}
        if inc_flow:
            inc_flow_arr = np.array(inc_flow, dtype=np.int64)
            inc_scale_arr = np.array(inc_scale, dtype=np.float64)
            unique_links = sorted(set(inc_link))
            link_index = {lk: j for j, lk in enumerate(unique_links)}
            inc_link_arr = np.array([link_index[lk] for lk in inc_link], dtype=np.int64)
            caps = np.array([self.capacity_fn(a, b) for a, b in unique_links], dtype=np.float64)
            iters = congestion_iters if congestion else 1
            loads = np.zeros(len(unique_links), dtype=np.float64)
            for it in range(iters):
                contrib = rates[inc_flow_arr] * inc_scale_arr * scale[inc_flow_arr]
                loads = np.zeros(len(unique_links), dtype=np.float64)
                np.add.at(loads, inc_link_arr, contrib)
                if not congestion:
                    break
                over = loads > caps
                if not over.any():
                    break
                link_factor = np.where(over, caps / np.maximum(loads, 1e-30), 1.0)
                # each flow is scaled by the most congested link it crosses
                flow_factor = np.ones(n, dtype=np.float64)
                np.minimum.at(flow_factor, inc_flow_arr, link_factor[inc_link_arr])
                scale *= flow_factor
            link_load = {lk: float(loads[j]) for lk, j in link_index.items()}

        delivered = after_filter * scale
        congestion_lost = after_filter - delivered
        filtered_rate = rates - after_filter

        drop_distance = {
            kind: (filtered_hops_weighted[kind] / filtered_total[kind])
            for kind in filtered_total if filtered_total[kind] > 0
        }
        return FluidResult(
            delivered=delivered,
            filtered=filtered_rate,
            congestion_lost=congestion_lost,
            link_load=link_load,
            byte_hops=dict(byte_hops),
            drop_distance=drop_distance,
            flows=flow_list,
        )
