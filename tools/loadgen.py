#!/usr/bin/env python3
"""Deterministic open-loop load harness for the live service facade.

Usage::

    python tools/loadgen.py                          # defaults, print summary
    python tools/loadgen.py --rate 150000 --duration 1.5 --min-rate 100000
    python tools/loadgen.py --out BENCH_service.json # commit the snapshot
    python tools/loadgen.py --duration 0             # determinism phase only
    python tools/loadgen.py --check-schema BENCH_service.json

Two phases over one seeded world (``--subscribers`` users owning disjoint
/16s, each with a small filter graph; ``--owned-share`` of generated
flows hit a subscriber prefix, the rest take the direct fast path):

1. **determinism** — the first ``--hash-checks`` flows are checked at
   fixed simulated timestamps (``ManualClock``) and their verdict stream
   is hashed (sha256 over one byte per verdict, in flow order).  Two runs
   with the same seed and config must print the same hash — the CI
   load-smoke job diffs them.
2. **throughput** — an *open-loop* run: ``rate * duration`` checks are
   assigned arrival times ``t0 + j/rate`` and issued on schedule by
   ``--workers`` threads (strided assignment).  A worker that falls
   behind issues immediately and records its lateness — offered load
   never adapts to service speed, which is what makes the measured
   sustained rate honest.  ``--min-rate`` turns the result into a CI
   gate.

The snapshot written by ``--out`` mirrors ``BENCH_micro.json``: a small,
diff-friendly JSON with the config, the verdict hash, the throughput
stats, and the facade's ``service.*`` counter values.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import ComponentGraph, NetworkUser, OwnershipRegistry  # noqa: E402
from repro.core.components import HeaderFilter, HeaderMatch  # noqa: E402
from repro.net import Prefix, Protocol  # noqa: E402
from repro.service import ManualClock, ServiceFacade  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_service.json"

#: Single byte per verdict in the hashed stream.
_VERDICT_BYTE = {"direct": b"d", "processed": b"p", "filtered": b"f",
                 "admission": b"a"}


def build_world(subscribers: int, owned_share: float, flows: int,
                seed: int) -> tuple[ServiceFacade, np.ndarray, np.ndarray]:
    """A seeded facade world plus ``flows`` precomputed (src, dst) pairs.

    Subscribers own disjoint /16s under 10.0.0.0/8 and install a
    dest-stage graph of two TCP/7 header filters (drops nothing at dport
    80 — the pipeline runs end to end and passes).  ``owned_share`` of the
    generated flows target a random subscriber address; the rest target
    unowned 172.16/12 space and take the direct fast path.
    """
    registry = OwnershipRegistry()
    facade = ServiceFacade(registry, clock=ManualClock())
    for i in range(subscribers):
        user = NetworkUser(f"user-{i}", prefixes=[Prefix((i + 1) << 16, 16)])
        graph = ComponentGraph(f"svc:{user.user_id}")
        graph.chain(
            HeaderFilter("f0", HeaderMatch(proto=Protocol.TCP, dport=7)),
            HeaderFilter("f1", HeaderMatch(proto=Protocol.TCP, dport=7)),
        )
        registry.register(user)
        facade.install(user, dst_graph=graph)
    rng = np.random.default_rng(seed)
    src = (0xAC10_0000 + rng.integers(0, 1 << 16, flows)).astype(np.int64)
    dst = (0xAC20_0000 + rng.integers(0, 1 << 16, flows)).astype(np.int64)
    if subscribers and owned_share > 0:
        owned = rng.random(flows) < owned_share
        owners = rng.integers(0, subscribers, flows)
        hosts = rng.integers(1, 1 << 16, flows)
        dst[owned] = (((owners[owned] + 1) << 16) + hosts[owned])
    return facade, src, dst


def verdict_hash(facade: ServiceFacade, src: np.ndarray, dst: np.ndarray,
                 checks: int, rate: float) -> str:
    """Hash the verdict stream of the first ``checks`` flows, issued at
    deterministic simulated timestamps ``j / rate``."""
    digest = hashlib.sha256()
    check = facade.check
    dt = 1.0 / rate if rate > 0 else 0.0
    n = min(checks, len(src))
    for j in range(n):
        verdict = check(int(src[j]), int(dst[j]), dport=80, now=j * dt)
        digest.update(_VERDICT_BYTE.get(verdict.reason, b"?"))
    return digest.hexdigest()


def open_loop_run(facade: ServiceFacade, src: np.ndarray, dst: np.ndarray,
                  rate: float, duration: float, workers: int) -> dict:
    """Issue ``rate * duration`` checks at their scheduled arrival times.

    Open loop: arrival ``j`` is due at ``t0 + j/rate`` regardless of how
    fast earlier checks completed; a late worker fires immediately and
    the lateness is recorded.  Workers take strided index ranges, so the
    flow mix each sees is identical across worker counts.
    """
    total = int(rate * duration)
    if total <= 0:
        return {"offered_rate": rate, "duration_s": duration, "checks": 0}
    n_flows = len(src)
    interval = 1.0 / rate
    barrier = threading.Barrier(workers + 1)
    late_max = [0.0] * workers
    late_sum = [0.0] * workers
    done = [0] * workers
    t0_box = [0.0]

    def worker(w: int) -> None:
        check = facade.check
        perf = time.perf_counter
        sleep = time.sleep
        barrier.wait()
        t0 = t0_box[0]
        lmax = lsum = 0.0
        count = 0
        for j in range(w, total, workers):
            scheduled = t0 + j * interval
            while True:
                ahead = scheduled - perf()
                if ahead <= 0.0:
                    break
                if ahead > 0.0005:
                    sleep(ahead - 0.0004)
                # else: spin until due (sub-0.5 ms)
            late = perf() - scheduled
            if late > lmax:
                lmax = late
            lsum += late
            k = j % n_flows
            check(int(src[k]), int(dst[k]), dport=80, now=0.0)
            count += 1
        late_max[w] = lmax
        late_sum[w] = lsum
        done[w] = count

    threads = [threading.Thread(target=worker, args=(w,), daemon=True)
               for w in range(workers)]
    for t in threads:
        t.start()
    barrier.wait()
    t0_box[0] = time.perf_counter() + 0.005  # common start, 5 ms out
    start = t0_box[0]
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    checks = sum(done)
    return {
        "offered_rate": rate,
        "duration_s": duration,
        "workers": workers,
        "checks": checks,
        "elapsed_s": round(elapsed, 4),
        "achieved_rate": round(checks / elapsed, 1) if elapsed > 0 else 0.0,
        "late_max_ms": round(max(late_max) * 1e3, 3),
        "late_mean_us": round(sum(late_sum) / checks * 1e6, 2),
    }


def facade_counters(facade: ServiceFacade) -> dict:
    core = facade.core
    return {
        "service.checks[pass]": facade._m_pass.value,
        "service.checks[drop]": facade._m_drop.value,
        "service.redirected": facade._m_redirected.value,
        "service.dropped": core.m_dropped.value,
        "service.cache_hits": core.m_fc_hits.value,
        "service.cache_misses": core.m_fc_misses.value,
    }


def schema_of(snapshot: dict) -> dict:
    """The name-level shape of a snapshot (keys, not values)."""
    return {
        "keys": sorted(snapshot),
        "config": sorted(snapshot.get("config", ())),
        "throughput": sorted(snapshot.get("throughput", ())),
        "metrics": sorted(snapshot.get("metrics", ())),
    }


def check_schema(snapshot: dict, schema_path: Path) -> list[str]:
    """Differences between this run's shape and a committed snapshot's."""
    with open(schema_path) as fh:
        want = schema_of(json.load(fh))
    have = schema_of(snapshot)
    problems = []
    for key, wanted in want.items():
        missing = sorted(set(wanted) - set(have.get(key, ())))
        if missing:
            problems.append(f"{key} missing vs {schema_path.name}: {missing}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate", type=float, default=150_000.0,
                        help="offered load in checks/sec (default 150k)")
    parser.add_argument("--duration", type=float, default=1.0,
                        help="throughput-phase length in seconds "
                             "(0 = determinism phase only)")
    parser.add_argument("--workers", type=int, default=1,
                        help="load-generating threads (default 1)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--subscribers", type=int, default=256,
                        help="installed subscriber services (default 256)")
    parser.add_argument("--owned-share", type=float, default=0.0,
                        help="share of flows owned by a subscriber "
                             "(default 0 — the no-op fast-path config)")
    parser.add_argument("--flows", type=int, default=4096,
                        help="distinct precomputed flows cycled through "
                             "(default 4096 — exactly the flow-cache size)")
    parser.add_argument("--hash-checks", type=int, default=20_000,
                        help="determinism-phase checks hashed (default 20k)")
    parser.add_argument("--min-rate", type=float, default=None,
                        help="fail unless the achieved rate is at least "
                             "this (CI load-smoke gate)")
    parser.add_argument("--out", type=Path, default=None, metavar="FILE",
                        help=f"write the JSON snapshot (e.g. {DEFAULT_OUT})")
    parser.add_argument("--check-schema", type=Path, metavar="SNAPSHOT",
                        help="fail unless this run's keys cover the "
                             "committed snapshot's (e.g. BENCH_service.json)")
    args = parser.parse_args(argv)

    facade, src, dst = build_world(args.subscribers, args.owned_share,
                                   args.flows, args.seed)
    digest = verdict_hash(facade, src, dst, args.hash_checks,
                          args.rate or 1.0)
    print(f"verdict stream: sha256={digest} "
          f"({min(args.hash_checks, len(src))} checks, seed={args.seed})")

    throughput = open_loop_run(facade, src, dst, args.rate, args.duration,
                               max(1, args.workers))
    if throughput.get("checks"):
        print(f"open loop: {throughput['checks']} checks in "
              f"{throughput['elapsed_s']}s -> "
              f"{throughput['achieved_rate']:.0f}/s "
              f"(offered {args.rate:.0f}/s, "
              f"max lateness {throughput['late_max_ms']}ms)")

    snapshot = {
        "generated_by": "tools/loadgen.py",
        "config": {
            "seed": args.seed, "subscribers": args.subscribers,
            "owned_share": args.owned_share, "flows": args.flows,
            "hash_checks": args.hash_checks, "rate": args.rate,
            "duration_s": args.duration, "workers": max(1, args.workers),
        },
        "verdict_hash": digest,
        "throughput": throughput,
        "metrics": facade_counters(facade),
    }
    if args.out:
        args.out.write_text(json.dumps(snapshot, indent=2, sort_keys=True)
                            + "\n")
        print(f"wrote {args.out}")
    if args.check_schema:
        problems = check_schema(snapshot, args.check_schema)
        if problems:
            for problem in problems:
                print(f"schema check: {problem}", file=sys.stderr)
            return 1
        print(f"schema check: ok ({args.check_schema})")
    if args.min_rate is not None:
        achieved = throughput.get("achieved_rate", 0.0)
        if achieved < args.min_rate:
            print(f"rate gate: achieved {achieved:.0f}/s below floor "
                  f"{args.min_rate:.0f}/s", file=sys.stderr)
            return 1
        print(f"rate gate: ok ({achieved:.0f}/s >= {args.min_rate:.0f}/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
