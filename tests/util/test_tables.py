"""Unit tests for the result Table."""

import pytest

from repro.util import Table


class TestTable:
    def test_add_row_and_column(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row(3, 4.0)
        assert t.column("a") == [1, 3]
        assert len(t) == 2

    def test_row_arity_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_to_text_alignment(self):
        t = Table("demo", ["name", "value"])
        t.add_row("x", 1.0)
        t.add_row("longer", 123456.0)
        text = t.to_text()
        assert "demo" in text
        lines = text.splitlines()
        header_idx = next(i for i, l in enumerate(lines) if "name" in l)
        widths = {len(l) for l in lines[header_idx:header_idx + 4]}
        assert len(widths) == 1  # all rows padded to identical width

    def test_to_text_empty(self):
        t = Table("empty", ["a"])
        assert "empty" in t.to_text()

    def test_notes_rendered(self):
        t = Table("demo", ["a"])
        t.add_note("a footnote")
        assert "a footnote" in t.to_text()
        assert "a footnote" in t.to_markdown()

    def test_markdown_shape(self):
        t = Table("demo", ["a", "b"])
        t.add_row(True, 0.00012)
        md = t.to_markdown()
        assert "| a | b |" in md
        assert "| yes | 0.00012 |" in md

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        t.add_row(1234567.0)
        t.add_row(0.25)
        t.add_row(0)
        text = t.to_text()
        assert "1.23e+06" in text
        assert "0.25" in text
