"""Per-ISP network management systems (paper Figs. 3 and 5, Sec. 5.1).

Each ISP runs an NMS that (a) attaches adaptive devices to its routers,
(b) installs/configures service components on them when instructed by the
TCSP, and (c) — crucially for availability — accepts *direct* requests
from certificate-bearing network users, so the service stays controllable
"if the network conditions are such that the TCSP can no longer be
reached, e.g. because of an ongoing DDoS attack on the TCSP".  An NMS can
also forward configurations to peer NMSes on the user's behalf.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, TYPE_CHECKING

from repro.errors import CertificateError, DeploymentError, ScopeViolation
from repro.core.certificates import CertificateAuthority, OwnershipCertificate
from repro.core.device import AdaptiveDevice, DeviceContext, attach_device
from repro.core.graph import ComponentGraph
from repro.core.ownership import NetworkUser, OwnershipRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["IspNms", "GraphFactory"]

#: builds a stage graph specialised to one device's context
GraphFactory = Callable[[DeviceContext], ComponentGraph]


class IspNms:
    """The network management system of one ISP (a set of ASes)."""

    def __init__(self, isp_id: str, network: "Network", asns: Iterable[int],
                 ca: CertificateAuthority) -> None:
        self.isp_id = isp_id
        self.network = network
        self.asns: set[int] = set(asns)
        self.ca = ca
        self.registry = OwnershipRegistry()
        self.devices: dict[int, AdaptiveDevice] = {}
        self.peers: list["IspNms"] = []
        self.deployments = 0
        self.direct_requests = 0

    # ----------------------------------------------------------------- devices
    def attach_devices(self, asns: Optional[Iterable[int]] = None) -> None:
        """Attach adaptive devices to (a subset of) this ISP's routers."""
        for asn in (self.asns if asns is None else asns):
            if asn not in self.asns:
                raise DeploymentError(f"{self.isp_id}: AS {asn} is not ours")
            if asn not in self.devices:
                self.devices[asn] = attach_device(self.network, asn, self.registry)

    def device_at(self, asn: int) -> AdaptiveDevice:
        try:
            return self.devices[asn]
        except KeyError as exc:
            raise DeploymentError(f"{self.isp_id}: no device at AS {asn}") from exc

    # -------------------------------------------------------------- deployment
    def deploy(self, cert: OwnershipCertificate, user: NetworkUser,
               target_asns: Iterable[int],
               src_graph_factory: Optional[GraphFactory] = None,
               dst_graph_factory: Optional[GraphFactory] = None) -> list[int]:
        """Install a user's service on this ISP's devices (Fig. 5 step
        'deploy/configure service components').

        The certificate is verified, and the user identity must match —
        the ISP-side half of the safe-delegation contract.  Returns the
        ASes actually configured.
        """
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id != user.user_id:
            raise CertificateError(
                f"certificate for {cert.user_id!r} used by {user.user_id!r}"
            )
        for prefix in user.prefixes:
            if not cert.covers(prefix):
                raise ScopeViolation(
                    f"user {user.user_id!r} claims prefix {prefix} outside "
                    f"its certificate"
                )
        if self.registry.owner_of(user.prefixes[0].first) is None:
            self.registry.register(user)
        configured = []
        for asn in sorted(set(target_asns) & self.asns):
            device = self.devices.get(asn)
            if device is None:
                continue  # ISP has no device at this router (yet)
            src_graph = src_graph_factory(device.context) if src_graph_factory else None
            dst_graph = dst_graph_factory(device.context) if dst_graph_factory else None
            if src_graph is None and dst_graph is None:
                continue
            device.install(user, src_graph=src_graph, dst_graph=dst_graph)
            configured.append(asn)
        self.deployments += 1
        return configured

    def deploy_direct(self, cert: OwnershipCertificate, user: NetworkUser,
                      target_asns: Iterable[int],
                      src_graph_factory: Optional[GraphFactory] = None,
                      dst_graph_factory: Optional[GraphFactory] = None,
                      forward_to_peers: bool = False) -> list[int]:
        """Direct user -> NMS path (TCSP unreachable, Sec. 5.1).

        With ``forward_to_peers`` the NMS relays the configuration to its
        peer NMSes "upon request of the network user".
        """
        self.direct_requests += 1
        configured = self.deploy(cert, user, target_asns,
                                 src_graph_factory, dst_graph_factory)
        if forward_to_peers:
            for peer in self.peers:
                configured += peer.deploy(cert, user, target_asns,
                                          src_graph_factory, dst_graph_factory)
        return configured

    # ------------------------------------------------------------- management
    def set_active(self, cert: OwnershipCertificate, user_id: str,
                   active: bool) -> int:
        """Activate/deactivate a user's service on all our devices."""
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id != user_id:
            raise CertificateError("certificate/user mismatch")
        touched = 0
        for device in self.devices.values():
            if user_id in device.services:
                device.set_active(user_id, active)
                touched += 1
        return touched

    def read_logs(self, cert: OwnershipCertificate, user_id: str) -> list[tuple]:
        """Collect the user's logger entries across our devices."""
        self.ca.verify(cert, self.network.sim.now)
        if cert.user_id != user_id:
            raise CertificateError("certificate/user mismatch")
        from repro.core.components import LoggerComponent

        entries: list[tuple] = []
        for device in self.devices.values():
            instance = device.services.get(user_id)
            if instance is None:
                continue
            for graph in (instance.src_graph, instance.dst_graph):
                if graph is None:
                    continue
                for component in graph.components():
                    if isinstance(component, LoggerComponent):
                        entries.extend(component.entries)
        return sorted(entries)

    def rule_count(self) -> int:
        return sum(d.rule_count() for d in self.devices.values())
