"""Tests for the SIR (patched) epidemic extension."""

import numpy as np
import pytest

from repro.attack import EpidemicModel, PatchedEpidemicModel
from repro.errors import AttackConfigError


class TestPatchedEpidemicModel:
    def test_zero_patch_rate_matches_si_model(self):
        si = EpidemicModel(n_vulnerable=10_000, scan_rate=4000.0)
        sir = PatchedEpidemicModel(n_vulnerable=10_000, scan_rate=4000.0,
                                   patch_rate=0.0)
        t, s, i, r = sir.curve(t_max=400.0, dt=0.5)
        expected = np.asarray(si.infected_at(t))
        # Euler integration vs closed form: a few percent at this dt
        mid = slice(len(t) // 4, None)
        assert np.allclose(i[mid], expected[mid], rtol=0.08)
        assert (r == 0).all()

    def test_population_conserved(self):
        m = PatchedEpidemicModel(n_vulnerable=5000, patch_rate=1e-3)
        t, s, i, r = m.curve(t_max=1000.0, dt=1.0)
        assert np.allclose(s + i + r, 5000, atol=1e-6)
        assert (s >= -1e-9).all() and (i >= -1e-9).all() and (r >= -1e-9).all()

    def test_patching_caps_the_botnet(self):
        lazy = PatchedEpidemicModel(patch_rate=1.0 / 86400.0)
        fast = PatchedEpidemicModel(patch_rate=1.0 / 600.0)
        _, lazy_peak = lazy.peak_infected(t_max=2000.0)
        _, fast_peak = fast.peak_infected(t_max=2000.0)
        assert fast_peak < lazy_peak

    def test_recovered_monotone(self):
        m = PatchedEpidemicModel(patch_rate=1e-3)
        _, _, _, r = m.curve(t_max=800.0, dt=1.0)
        assert (np.diff(r) >= -1e-9).all()

    def test_infection_eventually_declines_with_patching(self):
        m = PatchedEpidemicModel(n_vulnerable=10_000, scan_rate=4000.0,
                                 patch_rate=1.0 / 300.0)
        t_peak, peak = m.peak_infected(t_max=5000.0, dt=1.0)
        _, _, i, _ = m.curve(t_max=5000.0, dt=1.0)
        assert i[-1] < peak  # lazy patching still wins eventually

    def test_invalid_parameters(self):
        with pytest.raises(AttackConfigError):
            PatchedEpidemicModel(n_vulnerable=0)
        with pytest.raises(AttackConfigError):
            PatchedEpidemicModel(patch_rate=-1.0)
