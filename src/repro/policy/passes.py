"""Compiler passes: structural validation, Sec. 4.5 vetting, optimizations.

Every pass returns structured :class:`Diagnostic` records instead of
raising, so ``repro policy verify`` can show *all* problems at once; the
compiler turns the first ``error`` back into the exception (and message)
the pre-compiler code paths raised, keeping error behaviour byte-stable.

The structural pass replays :meth:`ComponentGraph.validate` — same
traversal order, same witness node, same message strings — so a graph is
rejected identically whether it is vetted directly or compiled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core.components import Verdict
from repro.core.safety import MAX_EXTRA_TRAFFIC_BPS, vet_component
from repro.errors import VettingError
from repro.policy.ir import OpKind, Policy

__all__ = [
    "Severity",
    "Diagnostic",
    "structural_pass",
    "vetting_pass",
    "dead_op_pass",
    "topo_order",
    "fuse_filter_runs",
    "reorder_observer_runs",
]


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding from a compiler pass."""

    severity: Severity
    code: str
    message: str
    ops: tuple[str, ...] = field(default=())

    def __str__(self) -> str:  # pragma: no cover - display helper
        where = f" [{', '.join(self.ops)}]" if self.ops else ""
        return f"{self.severity.value}: {self.code}: {self.message}{where}"


# ------------------------------------------------------------------ structure
def structural_pass(policy: Policy) -> list[Diagnostic]:
    """Cycles + reachability, mirroring ``ComponentGraph.validate()``."""
    if not policy.ops or policy.entry is None:
        return [Diagnostic(Severity.ERROR, "structure.empty",
                           f"graph {policy.name!r} is empty")]
    # acyclicity over the union of PASS/DROP edges, from any node —
    # adjacency built in edge insertion order, nodes visited in insertion
    # order, exactly like validate()
    adjacency: dict[int, list[int]] = {op.index: [] for op in policy.ops}
    for src, _verdict, dst in policy.edge_list:
        adjacency[src].append(dst)
    state: dict[int, int] = {}
    cycle_witness: Optional[int] = None

    def visit(node: int) -> bool:
        nonlocal cycle_witness
        state[node] = 1
        for nxt in adjacency[node]:
            mark = state.get(nxt, 0)
            if mark == 1:
                cycle_witness = nxt
                return True
            if mark == 0 and visit(nxt):
                return True
        state[node] = 2
        return False

    for op in policy.ops:
        if state.get(op.index, 0) == 0 and visit(op.index):
            name = policy.ops[cycle_witness].name  # type: ignore[index]
            return [Diagnostic(
                Severity.ERROR, "structure.cycle",
                f"graph {policy.name!r} has a cycle through {name!r}",
                (name,))]
    reachable = {policy.entry}
    frontier = [policy.entry]
    while frontier:
        node = frontier.pop()
        op = policy.ops[node]
        for nxt in (op.pass_to, op.drop_to):
            if nxt is not None and nxt not in reachable:
                reachable.add(nxt)
                frontier.append(nxt)
    unreachable = sorted(
        op.name for op in policy.ops if op.index not in reachable)
    if unreachable:
        return [Diagnostic(
            Severity.ERROR, "structure.unreachable",
            f"graph {policy.name!r}: unreachable components {unreachable}",
            tuple(unreachable))]
    return []


# -------------------------------------------------------------------- vetting
def vetting_pass(policy: Policy) -> list[Diagnostic]:
    """Sec. 4.5 static vetting as diagnostics (messages == vet_graph)."""
    diags: list[Diagnostic] = []
    for op in policy.ops:
        try:
            vet_component(op.component)
        except VettingError as exc:
            diags.append(Diagnostic(Severity.ERROR, "vet.component",
                                    str(exc), (op.name,)))
    total_extra = sum(
        op.component.capabilities.extra_traffic_bps for op in policy.ops)
    if total_extra > 2 * MAX_EXTRA_TRAFFIC_BPS:
        diags.append(Diagnostic(
            Severity.ERROR, "vet.aggregate",
            f"graph {policy.name!r} aggregates {total_extra:.0f} bit/s of "
            f"side-channel traffic (max {2 * MAX_EXTRA_TRAFFIC_BPS:.0f})"))
    return diags


# -------------------------------------------------------------- optimizations
def _feasible_successors(policy: Policy, index: int) -> list[int]:
    """Successors a packet can actually reach: a DROP edge out of an op
    whose component declares ``may_drop=False`` can never fire."""
    op = policy.ops[index]
    out = []
    if op.pass_to is not None:
        out.append(op.pass_to)
    if op.drop_to is not None and op.may_drop:
        out.append(op.drop_to)
    return out


def dead_op_pass(policy: Policy) -> tuple[set[int], list[Diagnostic]]:
    """Ops only reachable through infeasible edges are dead: no packet can
    ever arrive, so the batch program skips them entirely."""
    assert policy.entry is not None
    live = {policy.entry}
    frontier = [policy.entry]
    while frontier:
        node = frontier.pop()
        for nxt in _feasible_successors(policy, node):
            if nxt not in live:
                live.add(nxt)
                frontier.append(nxt)
    dead = sorted(op.name for op in policy.ops if op.index not in live)
    diags = []
    if dead:
        diags.append(Diagnostic(
            Severity.INFO, "opt.dead",
            f"removed {len(dead)} op(s) reachable only via infeasible "
            f"DROP edges", tuple(dead)))
    return live, diags


def topo_order(policy: Policy, live: set[int]) -> list[int]:
    """Deterministic topological order of the live ops over feasible edges
    (lowest insertion index first among ready ops)."""
    indegree = {i: 0 for i in live}
    for i in live:
        for nxt in _feasible_successors(policy, i):
            if nxt in live:
                indegree[nxt] += 1
    ready = sorted(i for i, d in indegree.items() if d == 0)
    order: list[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nxt in _feasible_successors(policy, node):
            if nxt in live:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    # keep ready sorted: insert in index order
                    ready.append(nxt)
                    ready.sort()
    return order


def _in_degree(policy: Policy, live: set[int]) -> dict[int, int]:
    indeg = {i: 0 for i in live}
    for i in live:
        for nxt in _feasible_successors(policy, i):
            if nxt in live:
                indeg[nxt] += 1
    return indeg


def fuse_filter_runs(policy: Policy, order: list[int],
                     live: set[int]) -> tuple[list[list[int]], list[Diagnostic]]:
    """Group maximal PASS-chains of HeaderFilters with unwired DROP edges.

    Members after the first must have in-degree 1 (rows can only arrive
    from the previous member), so the fused step evaluates all predicates
    over one row set with per-member counter accounting.
    """
    indeg = _in_degree(policy, live)
    groups: list[list[int]] = []
    consumed: set[int] = set()
    diags: list[Diagnostic] = []

    def fusable(i: int) -> bool:
        op = policy.ops[i]
        return op.kind is OpKind.FILTER and op.drop_to is None

    for i in order:
        if i in consumed:
            continue
        group = [i]
        if fusable(i):
            nxt = policy.ops[i].pass_to
            while (nxt is not None and nxt in live and nxt not in consumed
                   and fusable(nxt) and indeg[nxt] == 1):
                group.append(nxt)
                nxt = policy.ops[nxt].pass_to
        consumed.update(group)
        groups.append(group)
        if len(group) > 1:
            diags.append(Diagnostic(
                Severity.INFO, "opt.fuse",
                f"fused {len(group)} adjacent header filters into one "
                f"batch step",
                tuple(policy.ops[j].name for j in group)))
    return groups, diags


_PURE_OBSERVER_KINDS = frozenset({OpKind.OBSERVER_BATCH, OpKind.LOGGER})


def reorder_observer_runs(
        policy: Policy, groups: list[list[int]],
        live: set[int]) -> tuple[list[tuple[list[int], int]], list[Diagnostic]]:
    """Merge PASS-chains of pure observers into one step and sink scalar
    loggers behind vectorized observers.

    Pure observers never drop and never mutate, so every member of such a
    run sees the identical row set — any execution order yields identical
    state, and putting ``process_batch`` observers first keeps the
    vectorized updates together.  The scalar program is left untouched
    (source order); only the batch schedule is reordered.

    Returns ``(exec_order, tail)`` runs: ``tail`` is the *original* chain
    tail, whose PASS edge routes rows out of the run.
    """
    indeg = _in_degree(policy, live)
    diags: list[Diagnostic] = []
    out: list[tuple[list[int], int]] = []
    consumed: set[int] = set()

    def observer(i: int) -> bool:
        return policy.ops[i].kind in _PURE_OBSERVER_KINDS

    for group in groups:
        if group[0] in consumed:
            continue
        if len(group) == 1 and observer(group[0]):
            run = [group[0]]
            nxt = policy.ops[group[0]].pass_to
            while (nxt is not None and nxt in live and nxt not in consumed
                   and observer(nxt) and indeg[nxt] == 1):
                run.append(nxt)
                nxt = policy.ops[nxt].pass_to
            consumed.update(run)
            scheduled = sorted(
                run, key=lambda i: policy.ops[i].kind is not OpKind.OBSERVER_BATCH)
            if scheduled != run:
                diags.append(Diagnostic(
                    Severity.INFO, "opt.reorder",
                    "sank scalar observers behind vectorized observers in "
                    "an equal-row-set run",
                    tuple(policy.ops[j].name for j in scheduled)))
            out.append((scheduled, run[-1]))
        else:
            consumed.update(group)
            out.append((group, group[-1]))
    return out, diags
