"""Traffic ownership (paper Sec. 4.1).

"We declare a network packet to be owned by these network users, who are
officially registered to hold either the destination or the source IP
address or both of that packet."

* :class:`NumberAuthority` models the RIR databases (ARIN, RIPE NCC, ...)
  that the TCSP queries during registration (Fig. 4),
* :class:`NetworkUser` is a registered customer of the service,
* :class:`OwnershipRegistry` answers the per-packet question the adaptive
  device asks on every redirect decision: *who owns this address?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import OwnershipError
from repro.net.addressing import IPv4Address, Prefix, PrefixTable
from repro.net.packet import Packet

__all__ = ["NetworkUser", "NumberAuthority", "OwnershipRegistry"]


@dataclass
class NetworkUser:
    """A network user: an organisation holding registered address space.

    The paper targets "large organisations that are strongly dependent on
    Internet communication" (Sec. 5.3) — each instance stands for one such
    subscriber.
    """

    user_id: str
    display_name: str = ""
    prefixes: list[Prefix] = field(default_factory=list)

    def owns_address(self, addr: IPv4Address | int | str) -> bool:
        return any(p.contains(addr) for p in self.prefixes)

    def owns_packet(self, packet: Packet) -> bool:
        """Sec. 4.1 ownership: source OR destination inside owned space."""
        return self.owns_address(packet.src) or self.owns_address(packet.dst)

    def __hash__(self) -> int:
        return hash(self.user_id)


class NumberAuthority:
    """Internet number authority: the ground-truth prefix -> holder database.

    "the TCSP checks with Internet number authorities if the IP addresses
    are indeed owned by the service requester" (Sec. 5.1 / Fig. 4).
    """

    def __init__(self, name: str = "RIR") -> None:
        self.name = name
        self._holders: PrefixTable[str] = PrefixTable()

    def record_allocation(self, prefix: Prefix, holder_id: str) -> None:
        """Register that ``holder_id`` was allocated ``prefix``."""
        existing = self._holders.lookup_exact(prefix)
        if existing is not None and existing != holder_id:
            raise OwnershipError(
                f"{prefix} already allocated to {existing!r}, cannot give to {holder_id!r}"
            )
        self._holders.insert(prefix, holder_id)

    def holder_of(self, prefix: Prefix) -> Optional[str]:
        """Exact-allocation holder of the prefix, if any."""
        return self._holders.lookup_exact(prefix)

    def verify_ownership(self, holder_id: str, prefixes: Iterable[Prefix]) -> bool:
        """True iff every prefix is held by ``holder_id`` (directly or via a
        covering allocation).

        One trie walk along each prefix's bit path visits exactly the
        allocations that cover it (at most 33), so verification cost is
        independent of how many allocations the authority holds — the
        previous implementation rescanned every allocation per prefix.
        A holder's larger block vouches for any sub-prefix inside it, even
        one that was separately sub-allocated onward.
        """
        return all(
            any(holder == holder_id for _, holder in self._holders.covering(prefix))
            for prefix in prefixes
        )

    def allocations_of(self, holder_id: str) -> list[Prefix]:
        return sorted(p for p, h in self._holders.items() if h == holder_id)


class OwnershipRegistry:
    """Fast address -> owning user lookups for the adaptive devices.

    A single longest-prefix-match trie over all registered users' prefixes;
    the device consults it twice per packet (source stage, destination
    stage, Sec. 4.1).
    """

    def __init__(self) -> None:
        self._table: PrefixTable[NetworkUser] = PrefixTable()
        self._users: dict[str, NetworkUser] = {}
        #: mutation counter (plain attribute: read on every cached redirect
        #: decision); devices key their per-flow caches on it so a
        #: ``register``/``unregister`` invalidates every cached decision.
        self.version = 0

    def register(self, user: NetworkUser) -> None:
        """Add (or extend) a user's registered prefixes."""
        for prefix in user.prefixes:
            current = self._table.lookup_exact(prefix)
            if current is not None and current.user_id != user.user_id:
                raise OwnershipError(
                    f"{prefix} already registered to {current.user_id!r}"
                )
            self._table.insert(prefix, user)
        self._users[user.user_id] = user
        self.version += 1

    def unregister(self, user_id: str) -> None:
        user = self._users.pop(user_id, None)
        if user is None:
            raise OwnershipError(f"unknown user {user_id!r}")
        for prefix in user.prefixes:
            self._table.remove(prefix)
        self.version += 1

    def owner_of(self, addr: IPv4Address | int | str) -> Optional[NetworkUser]:
        """The registered user owning this address (LPM), or None."""
        return self._table.lookup(addr)

    def owners_of_many(self, addrs):
        """Vectorised :meth:`owner_of` over a batch of addresses: an object
        ndarray of :class:`NetworkUser` / ``None``, aligned with the input
        (the device's batched redirect decision feeds address columns
        straight into the compiled LPM)."""
        return self._table.lookup_many(addrs)

    def owners_of_packet(self, packet: Packet) -> tuple[Optional[NetworkUser], Optional[NetworkUser]]:
        """(source owner, destination owner) — the two processing stages."""
        return self.owner_of(packet.src), self.owner_of(packet.dst)

    def is_owned(self, packet: Packet) -> bool:
        """Does *any* registered user own this packet?  (Redirect decision:
        'Most traffic will use the direct path through the router.')"""
        src_owner, dst_owner = self.owners_of_packet(packet)
        return src_owner is not None or dst_owner is not None

    def user(self, user_id: str) -> NetworkUser:
        try:
            return self._users[user_id]
        except KeyError as exc:
            raise OwnershipError(f"unknown user {user_id!r}") from exc

    @property
    def users(self) -> list[NetworkUser]:
        return list(self._users.values())

    def __len__(self) -> int:
        return len(self._users)
