"""Valley-free BGP-like policy routing.

Shortest-path routing (the default) ignores commercial AS relationships.
This module adds the standard Gao-Rexford model: edges are labelled
customer->provider or peer-peer, and a path is *valley-free* when it
climbs customer->provider links, crosses at most one peer link at the
top, and then descends provider->customer — no AS transits traffic
between two of its providers/peers for free.

Used as an optional, higher-fidelity routing substrate: filter-placement
results (E3/E4) can be recomputed on policy paths, and the tier structure
of :class:`~repro.net.topology.Topology` provides the relationship labels
(provider = the higher tier; same tier = peering).
"""

from __future__ import annotations

import enum
import heapq
from typing import Optional

from repro.errors import RoutingError
from repro.net.topology import ASRole, Topology

__all__ = ["Relationship", "PolicyRouting"]


class Relationship(enum.Enum):
    """Role of the *neighbour* from the local AS's point of view."""

    PROVIDER = "provider"
    PEER = "peer"
    CUSTOMER = "customer"


_TIER_ORDER = {ASRole.CORE: 2, ASRole.TRANSIT: 1, ASRole.STUB: 0}


def infer_relationship(topology: Topology, a: int, b: int) -> Relationship:
    """Relationship of ``b`` as seen from ``a`` (tier-based inference)."""
    ta, tb = _TIER_ORDER[topology.role_of(a)], _TIER_ORDER[topology.role_of(b)]
    if tb > ta:
        return Relationship.PROVIDER
    if tb < ta:
        return Relationship.CUSTOMER
    return Relationship.PEER


class PolicyRouting:
    """Valley-free path computation over a tier-labelled topology.

    Paths are found with a Dijkstra variant over (AS, phase) states where
    phase 0 = still climbing (customer->provider edges allowed), phase 1 =
    crossed the single peer edge, phase 2 = descending (only
    provider->customer edges allowed).  Among valley-free paths the
    shortest (fewest AS hops, deterministic tie-break) is chosen — the
    usual abstraction of BGP's preference rules.
    """

    #: allowed transitions: (phase, relationship of next hop) -> new phase
    _TRANSITIONS = {
        (0, Relationship.PROVIDER): 0,
        (0, Relationship.PEER): 1,
        (0, Relationship.CUSTOMER): 2,
        (1, Relationship.CUSTOMER): 2,
        (2, Relationship.CUSTOMER): 2,
    }

    def __init__(self, topology: Topology,
                 relationships: Optional[dict[tuple[int, int], Relationship]] = None) -> None:
        self.topology = topology
        self._rel: dict[tuple[int, int], Relationship] = {}
        inverse = {
            Relationship.PROVIDER: Relationship.CUSTOMER,
            Relationship.CUSTOMER: Relationship.PROVIDER,
            Relationship.PEER: Relationship.PEER,
        }
        for a, b in topology.graph.edges:
            if relationships and (a, b) in relationships:
                rel_ab = relationships[(a, b)]
                rel_ba = inverse[rel_ab]
            elif relationships and (b, a) in relationships:
                rel_ba = relationships[(b, a)]
                rel_ab = inverse[rel_ba]
            else:
                rel_ab = infer_relationship(topology, a, b)
                rel_ba = infer_relationship(topology, b, a)
            self._rel[(a, b)] = rel_ab
            self._rel[(b, a)] = rel_ba
        self._path_cache: dict[tuple[int, int], Optional[list[int]]] = {}

    def relationship(self, a: int, b: int) -> Relationship:
        """Relationship of ``b`` from ``a``'s point of view."""
        try:
            return self._rel[(a, b)]
        except KeyError as exc:
            raise RoutingError(f"AS {a} and AS {b} are not adjacent") from exc

    def path(self, src: int, dst: int) -> list[int]:
        """Shortest valley-free path ``[src, ..., dst]``.

        Raises :class:`RoutingError` when no valley-free path exists (the
        real-world "no route" situation policy routing creates).
        """
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return list(cached)
        if (src, dst) in self._path_cache:  # cached miss
            raise RoutingError(f"no valley-free path AS{src} -> AS{dst}")
        if src == dst:
            return [src]
        # Dijkstra over (hops, tie, asn, phase)
        best: dict[tuple[int, int], int] = {(src, 0): 0}
        parent: dict[tuple[int, int], tuple[int, int]] = {}
        heap: list[tuple[int, int, int]] = [(0, src, 0)]
        goal: Optional[tuple[int, int]] = None
        while heap:
            hops, asn, phase = heapq.heappop(heap)
            if best.get((asn, phase), -1) != hops:
                continue
            if asn == dst:
                goal = (asn, phase)
                break
            for nxt in sorted(self.topology.graph.neighbors(asn)):
                rel = self._rel[(asn, nxt)]
                new_phase = self._TRANSITIONS.get((phase, rel))
                if new_phase is None:
                    continue
                state = (nxt, new_phase)
                if hops + 1 < best.get(state, 1 << 30):
                    best[state] = hops + 1
                    parent[state] = (asn, phase)
                    heapq.heappush(heap, (hops + 1, nxt, new_phase))
        if goal is None:
            self._path_cache[(src, dst)] = None
            raise RoutingError(f"no valley-free path AS{src} -> AS{dst}")
        path = [goal[0]]
        state = goal
        while state in parent:
            state = parent[state]
            path.append(state[0])
        path.reverse()
        self._path_cache[(src, dst)] = list(path)
        return path

    def has_path(self, src: int, dst: int) -> bool:
        try:
            self.path(src, dst)
            return True
        except RoutingError:
            return False

    def is_valley_free(self, path: list[int]) -> bool:
        """Check an explicit AS path against the Gao-Rexford conditions."""
        phase = 0
        for a, b in zip(path, path[1:]):
            rel = self.relationship(a, b)
            nxt = self._TRANSITIONS.get((phase, rel))
            if nxt is None:
                return False
            phase = nxt
        return True

    def stretch_vs_shortest(self, src: int, dst: int,
                            shortest_len: int) -> float:
        """Policy-path length relative to the shortest path (>= 1)."""
        return (len(self.path(src, dst)) - 1) / max(1, shortest_len)
