"""Benchmark regenerating E7: control-plane workflows and TCSP resilience (Sec. 5.1)."""

from repro.experiments import e7_control_plane

from conftest import run_and_print


def test_e7(benchmark, exp_cfg):
    """E7: control-plane workflows and TCSP resilience (Sec. 5.1)"""
    run_and_print(benchmark, e7_control_plane.run, exp_cfg)
