"""Tests for valley-free policy routing."""

import pytest

from repro.errors import RoutingError
from repro.net import ASRole, TopologyBuilder
from repro.net.policy import PolicyRouting, Relationship, infer_relationship


@pytest.fixture(scope="module")
def hier():
    return TopologyBuilder.hierarchical(2, 2, 3, seed=5)


class TestRelationshipInference:
    def test_stub_sees_transit_as_provider(self, hier):
        stub = hier.stub_ases[0]
        transit = next(n for n in hier.neighbors(stub)
                       if hier.role_of(n) is ASRole.TRANSIT)
        assert infer_relationship(hier, stub, transit) is Relationship.PROVIDER
        assert infer_relationship(hier, transit, stub) is Relationship.CUSTOMER

    def test_core_pair_are_peers(self, hier):
        a, b = hier.core_ases[:2]
        assert infer_relationship(hier, a, b) is Relationship.PEER

    def test_relationship_lookup_requires_adjacency(self, hier):
        pr = PolicyRouting(hier)
        stubs = hier.stub_ases
        with pytest.raises(RoutingError):
            pr.relationship(stubs[0], stubs[-1])


class TestValleyFreePaths:
    def test_paths_are_valley_free(self, hier):
        pr = PolicyRouting(hier)
        stubs = hier.stub_ases
        for src in stubs[:4]:
            for dst in stubs[-4:]:
                if src == dst:
                    continue
                path = pr.path(src, dst)
                assert path[0] == src and path[-1] == dst
                assert pr.is_valley_free(path)

    def test_self_path(self, hier):
        pr = PolicyRouting(hier)
        assert pr.path(3, 3) == [3]

    def test_no_transit_through_customer(self):
        """Two providers of the same stub must not route through it."""
        import networkx as nx

        from repro.net.topology import Topology

        g = nx.Graph()
        # two transits, both providers of one stub; transits not adjacent,
        # but both hang off separate cores that do peer.
        g.add_node(0, role=ASRole.CORE)
        g.add_node(1, role=ASRole.CORE)
        g.add_edge(0, 1)
        g.add_node(2, role=ASRole.TRANSIT)
        g.add_node(3, role=ASRole.TRANSIT)
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        g.add_node(4, role=ASRole.STUB)  # customer of both transits
        g.add_edge(2, 4)
        g.add_edge(3, 4)
        topo = Topology(g)
        pr = PolicyRouting(topo)
        # shortest path 2 -> 3 would be 2-4-3 (through the stub customer),
        # but that is a valley: the policy path climbs over the cores.
        path = pr.path(2, 3)
        assert 4 not in path
        assert path == [2, 0, 1, 3]
        assert not pr.is_valley_free([2, 4, 3])

    def test_at_most_one_peer_edge(self, hier):
        pr = PolicyRouting(hier)
        for src in hier.stub_ases[:5]:
            for dst in hier.stub_ases[-5:]:
                if src == dst:
                    continue
                path = pr.path(src, dst)
                peers = sum(
                    1 for a, b in zip(path, path[1:])
                    if pr.relationship(a, b) is Relationship.PEER
                )
                assert peers <= 1

    def test_unreachable_raises_and_caches(self):
        """An isolated customer pair with no common provider chain."""
        import networkx as nx

        from repro.net.topology import Topology

        g = nx.Graph()
        g.add_node(0, role=ASRole.STUB)
        g.add_node(1, role=ASRole.STUB)
        g.add_node(2, role=ASRole.STUB)
        # 0 and 2 are both *providers*? no: same tier -> peers; a path
        # 0-1-2 would need stub 1 to transit between two peers: invalid.
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        topo = Topology(g)
        pr = PolicyRouting(topo)
        # peer -> peer at stub 1 is a valley; no valley-free path exists
        with pytest.raises(RoutingError):
            pr.path(0, 2)
        with pytest.raises(RoutingError):  # cached miss path
            pr.path(0, 2)
        assert not pr.has_path(0, 2)
        assert pr.has_path(0, 1)

    def test_explicit_relationships_override(self, hier):
        # force one stub-transit edge to be a peering: traffic from that
        # stub can still exit via its (now) peer, but only as first hop
        stub = hier.stub_ases[0]
        transit = next(n for n in hier.neighbors(stub)
                       if hier.role_of(n) is ASRole.TRANSIT)
        pr = PolicyRouting(hier, relationships={(stub, transit): Relationship.PEER})
        assert pr.relationship(stub, transit) is Relationship.PEER
        assert pr.relationship(transit, stub) is Relationship.PEER

    def test_policy_path_at_least_as_long_as_shortest(self, hier):
        import networkx as nx

        pr = PolicyRouting(hier)
        for src in hier.stub_ases[:4]:
            lengths = nx.single_source_shortest_path_length(hier.graph, src)
            for dst in hier.stub_ases[-4:]:
                if src == dst:
                    continue
                assert len(pr.path(src, dst)) - 1 >= lengths[dst]
                assert pr.stretch_vs_shortest(src, dst, lengths[dst]) >= 1.0
